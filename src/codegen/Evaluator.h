//===- Evaluator.h - Executable form of compiled DSL functions ----*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cell evaluator: the typed AST of a recursion is executed directly
/// over a runtime environment (bound calling arguments, the current
/// recursion point, and a DP-table view for recursive lookups), counting
/// abstract cost events as it goes. This plays the role the paper's
/// nvcc-compiled kernels play on real hardware; the synthesized CUDA
/// source itself is produced separately by CudaEmitter.
///
/// Values of type `prob` are computed in log space (Section 3.2's
/// motivation for a dedicated probability type): multiplication becomes
/// addition and summation becomes log-sum-exp, eliminating underflow on
/// long sequences.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_CODEGEN_EVALUATOR_H
#define PARREC_CODEGEN_EVALUATOR_H

#include "bio/Hmm.h"
#include "bio/Sequence.h"
#include "bio/SubstitutionMatrix.h"
#include "gpu/CostModel.h"
#include "lang/Sema.h"

#include <vector>

namespace parrec {
namespace codegen {

/// One bound calling argument. Only the member matching the parameter's
/// type is meaningful.
struct ArgValue {
  const bio::Sequence *Seq = nullptr;
  const bio::SubstitutionMatrix *Matrix = nullptr;
  const bio::Hmm *Hmm = nullptr;
  int64_t Int = 0;
  double Real = 0.0;

  static ArgValue ofSeq(const bio::Sequence *S) {
    ArgValue V;
    V.Seq = S;
    return V;
  }
  static ArgValue ofMatrix(const bio::SubstitutionMatrix *M) {
    ArgValue V;
    V.Matrix = M;
    return V;
  }
  static ArgValue ofHmm(const bio::Hmm *H) {
    ArgValue V;
    V.Hmm = H;
    return V;
  }
  static ArgValue ofInt(int64_t I) {
    ArgValue V;
    V.Int = I;
    return V;
  }
  static ArgValue ofReal(double R) {
    ArgValue V;
    V.Real = R;
    return V;
  }
};

/// Read access to the DP table for recursive lookups.
class TableView {
public:
  virtual ~TableView() = default;
  /// Value previously stored for the recursion point \p Point (one entry
  /// per recursion dimension).
  virtual double get(const int64_t *Point) const = 0;
};

/// Log-space caches of an HMM's parameters, built once per binding so
/// per-cell evaluation avoids libm calls.
struct HmmLogCache {
  const bio::Hmm *Model = nullptr;
  std::vector<double> LogTransitionProbs;
  /// Per state: per alphabet character log emission; empty for silent
  /// states (which contribute log 1 = 0).
  std::vector<std::vector<double>> LogEmissions;

  void build(const bio::Hmm &Hmm);
};

/// Validates that an analysed function can actually be executed by this
/// backend (e.g. no subtraction of probabilities, reductions only over
/// transition sets). Reports errors; returns false on failure.
bool validateForExecution(const lang::FunctionDecl &F,
                          DiagnosticEngine &Diags);

/// Evaluates cells of one recursion for one problem binding.
///
/// Thread-compatible: a bound Evaluator is read-only during evalCell, so
/// a single instance can serve the whole simulated block.
class Evaluator {
public:
  Evaluator(const lang::FunctionDecl &F, const lang::FunctionInfo &Info);

  /// Binds the calling arguments (one ArgValue per declared parameter;
  /// entries for recursive parameters are ignored) and precomputes model
  /// caches.
  void bind(std::vector<ArgValue> Args);

  const lang::FunctionInfo &info() const { return Info; }
  const std::vector<ArgValue> &boundArgs() const { return Args; }

  /// The per-parameter log-space model caches built by bind(). The
  /// bytecode VM borrows these so both evaluators read identical bits.
  const std::vector<HmmLogCache> &hmmCaches() const { return HmmCaches; }

  /// True when the function's results are log-space probabilities.
  bool isProbFunction() const {
    return Decl.ReturnType.Kind == lang::TypeKind::Prob;
  }

  /// Computes the value of the cell at \p Point (recursion-dimension
  /// coordinates), reading dependencies from \p Table and charging events
  /// to \p Cost. The returned double is what the table stores (log-space
  /// for prob functions).
  double evalCell(const int64_t *Point, const TableView &Table,
                  gpu::CostCounter &Cost) const;

private:
  const lang::FunctionDecl &Decl;
  const lang::FunctionInfo &Info;
  std::vector<ArgValue> Args;
  std::vector<HmmLogCache> HmmCaches; // Parallel to Args.

  /// Dimension index for each parameter (-1 for calling parameters).
  std::vector<int> ParamToDim;

  struct EvalContext;
  struct RuntimeValue;
  RuntimeValue evalExpr(const lang::Expr *E, EvalContext &Ctx) const;
};

} // namespace codegen
} // namespace parrec

#endif // PARREC_CODEGEN_EVALUATOR_H
