//===- BytecodeVM.cpp - Register VM for compiled cell bodies ----------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "codegen/BytecodeVM.h"

using namespace parrec;
using namespace parrec::codegen;

void BytecodeVM::bind(const Evaluator &Eval) {
  const std::vector<ArgValue> &Args = Eval.boundArgs();
  const std::vector<HmmLogCache> &Caches = Eval.hmmCaches();
  assert(Args.size() == Prog->ParamClasses.size() &&
         "binding does not match the compiled function");

  size_t N = Args.size();
  Seqs.assign(N, {});
  Matrices.assign(N, nullptr);
  Hmms.clear();
  Hmms.resize(N);
  IntArgs.assign(N, 0);
  RealArgs.assign(N, 0.0);

  for (size_t P = 0; P != N; ++P) {
    switch (Prog->ParamClasses[P]) {
    case ParamClass::Seq:
      if (const bio::Sequence *S = Args[P].Seq) {
        Seqs[P].Data = S->data().data();
        Seqs[P].Len = S->length();
      }
      break;
    case ParamClass::Matrix:
      Matrices[P] = Args[P].Matrix;
      break;
    case ParamClass::Hmm: {
      const bio::Hmm *H = Args[P].Hmm;
      if (!H)
        break;
      BoundHmm &BH = Hmms[P];
      BH.H = H;
      // Borrow the Evaluator's log caches: same values, same bits.
      const HmmLogCache &Cache = Caches[P];
      BH.LogTrans = Cache.LogTransitionProbs.data();

      unsigned NumStates = H->numStates();
      unsigned Alpha = H->alphabet().size();
      BH.Stride = Alpha + 1;
      // Silent states keep all-zero rows (log 1 for any character);
      // emitting states get their cached log emissions plus -inf in the
      // trailing out-of-alphabet column.
      BH.Emissions.assign(static_cast<size_t>(NumStates) * BH.Stride,
                          0.0);
      for (unsigned S = 0; S != NumStates; ++S) {
        const std::vector<double> &Row = Cache.LogEmissions[S];
        if (Row.empty())
          continue;
        double *Dst = BH.Emissions.data() +
                      static_cast<size_t>(S) * BH.Stride;
        for (unsigned C = 0; C != Alpha; ++C)
          Dst[C] = Row[C];
        Dst[Alpha] = NegInfinity;
      }
      for (unsigned C = 0; C != 256; ++C) {
        int Index = H->alphabet().indexOf(static_cast<char>(C));
        BH.CharCol[C] =
            Index >= 0 ? static_cast<uint16_t>(Index)
                       : static_cast<uint16_t>(Alpha);
      }
      break;
    }
    case ParamClass::Int:
      IntArgs[P] = Args[P].Int;
      break;
    case ParamClass::Real:
      RealArgs[P] = Args[P].Real;
      break;
    case ParamClass::Unused:
      break;
    }
  }
}
