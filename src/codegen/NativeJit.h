//===- NativeJit.h - Native host JIT for executable plans ---------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Run-time code generation for the host path, in the PyCUDA/PyOpenCL
/// style: render one ExecutablePlan — its partition loop nest, its
/// sliding-window (or dense) table addressing, and its bytecode cell body
/// — as a specialised C translation unit, compile it with the system C
/// compiler into a shared object, dlopen it, and dispatch the resolved
/// kernel instead of interpreting bytecode.
///
/// Everything that is a *plan-time* constant is baked into the source:
/// loop bounds, schedule coefficients, fastmod window addressing (the
/// same slot math as exec::SlidingWindowTable), the result conversion,
/// and the packed per-instruction cost deltas. Everything that varies
/// per *binding* (sequences, matrices, the precomputed log-space HMM
/// tables, scalar arguments, the table base pointer and the cost-model
/// cycle weights) is passed at run time through JitArgs, so one cached
/// kernel serves every problem that reuses the plan — exactly the
/// contract the bytecode program already has.
///
/// The emitted code replicates the bytecode VM operation-for-operation
/// (one floating-point operation per emitted statement, compiled with
/// -ffp-contract=off, hexfloat literals for real immediates, the same
/// libm call sequence for log-space arithmetic), so results, cost
/// counters and modelled cycle totals are bit-identical to the VM and
/// the AST oracle.
///
/// Compiled objects are cached on disk keyed by the schedule fingerprint
/// plus a hash of the emitted source, so cold process starts reuse warm
/// kernels without invoking the compiler. Any failure — unsupported
/// body shape, missing or broken host compiler, dlopen error — degrades
/// to the bytecode VM with a single warning line and a `jit.fallbacks`
/// metric; it is never an error.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_CODEGEN_NATIVEJIT_H
#define PARREC_CODEGEN_NATIVEJIT_H

#include "codegen/Bytecode.h"
#include "codegen/Evaluator.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace parrec {
namespace exec {
class ExecutablePlan;
} // namespace exec

namespace codegen {

/// POD mirrors of the VM's bound state, shared with the emitted C (which
/// declares structurally identical structs). Every member is 8 bytes, so
/// the layouts agree by construction on any common C ABI.
struct JitSeq {
  const char *Data;
  int64_t Len;
};

struct JitMatrix {
  const int64_t *Scores;  // size*size, row-major by alphabet index.
  const int64_t *CharIdx; // 256 entries; -1 outside the alphabet.
  int64_t Size;
  int64_t DefaultScore;
};

struct JitHmm {
  const double *LogTrans;      // One per transition (borrowed log cache).
  const double *Emissions;     // NumStates x Stride dense log emissions.
  const uint64_t *CharCol;     // 256-entry character -> emission column.
  const uint64_t *TransFrom;   // Per transition: source state.
  const uint64_t *TransTo;     // Per transition: target state.
  const uint64_t *StateIsStart; // Per state: 0/1.
  const uint64_t *StateIsEnd;
  const uint64_t *AdjInOff;    // CSR offsets (NumStates+1) into AdjIn.
  const uint64_t *AdjIn;       // transitionsTo lists, concatenated.
  const uint64_t *AdjOutOff;
  const uint64_t *AdjOut;      // transitionsFrom lists, concatenated.
  uint64_t Stride;             // Emission row stride (alphabet + 1).
};

/// Per-run kernel inputs: the binding plus the table base pointer and the
/// cost model's cycle weights (so one kernel serves both backends and
/// both table residencies).
struct JitArgs {
  const JitSeq *Seqs;
  const JitMatrix *Matrices;
  const JitHmm *Hmms;
  const int64_t *IntArgs;
  const double *RealArgs;
  double *Table;
  uint64_t CycOp;
  uint64_t CycTrans;
  uint64_t CycTable;
  uint64_t CycModel;
};

/// Per-invocation outputs, folded into the caller's WorkerSlot: the wide
/// cost lanes (table writes include the per-cell store), cell count,
/// running table maximum and the root-cell capture.
struct JitSlot {
  uint64_t Ops;
  uint64_t TableReads;
  uint64_t TableWrites;
  uint64_t ModelReads;
  uint64_t Transcendentals;
  uint64_t Cells;
  double TableMax;
  double RootValue;
  uint64_t HasRoot;
};

/// The kernel entry point: scans partition \p P for simulated threads
/// [ThreadBegin, ThreadEnd) of a block of \p NumThreads, accumulating
/// into \p Slot and writing each thread's modelled cycle total to
/// \p ThreadCycles[t].
using JitKernelFn = void (*)(const JitArgs *Args, int64_t P,
                             uint32_t ThreadBegin, uint32_t ThreadEnd,
                             uint32_t NumThreads, int32_t CheckRoot,
                             JitSlot *Slot, uint64_t *ThreadCycles);

/// A resolved kernel holding its dlopen handle open for as long as any
/// plan references it.
class JitKernel {
public:
  JitKernel(void *Handle, JitKernelFn Fn) : Handle(Handle), Fn(Fn) {}
  JitKernel(const JitKernel &) = delete;
  JitKernel &operator=(const JitKernel &) = delete;
  ~JitKernel();

  JitKernelFn fn() const { return Fn; }

private:
  void *Handle = nullptr;
  JitKernelFn Fn = nullptr;
};

/// The per-binding state a jitted kernel consumes; mirrors
/// BytecodeVM::bind field-for-field (and borrows the same Evaluator log
/// caches, so every probability the kernel reads is bit-identical to the
/// VM's). The Evaluator must stay alive and bound while the returned
/// args are in use.
class JitBinding {
public:
  JitBinding() = default;
  JitBinding(const JitBinding &) = delete;
  JitBinding &operator=(const JitBinding &) = delete;

  void bind(const BytecodeProgram &Prog, const Evaluator &Eval);

  /// Args with the binding pointers filled in; the caller sets Table and
  /// the cycle weights per run.
  JitArgs args() const { return Args; }

private:
  JitArgs Args{};
  std::vector<JitSeq> Seqs;
  std::vector<JitMatrix> Matrices;
  std::vector<JitHmm> Hmms;
  std::vector<int64_t> IntArgs;
  std::vector<double> RealArgs;

  struct MatrixData {
    std::vector<int64_t> Scores;
    std::vector<int64_t> CharIdx;
  };
  struct HmmData {
    std::vector<double> Emissions;
    std::vector<uint64_t> CharCol;
    std::vector<uint64_t> From, To, IsStart, IsEnd;
    std::vector<uint64_t> AdjInOff, AdjIn, AdjOutOff, AdjOut;
  };
  std::vector<MatrixData> MatrixStore;
  std::vector<HmmData> HmmStore;
};

struct JitCompileOptions {
  /// On-disk shared-object cache directory. Empty resolves, in order, to
  /// $ParRec_JIT_CACHE, $PARREC_JIT_CACHE, ~/.cache/parrec-jit.
  std::string CacheDir;
};

/// Renders, compiles (or loads from the disk cache) and resolves the
/// kernel for \p Plan. Returns null on any failure after emitting a
/// once-per-process warning and bumping `jit.fallbacks`; callers then
/// keep using the bytecode VM. Records `jit.compile_ns` and bumps
/// `jit.cache_hits` / `jit.cache_misses`.
std::shared_ptr<const JitKernel>
compileKernel(const exec::ExecutablePlan &Plan,
              const JitCompileOptions &Opts);

/// Renders the C translation unit for \p Plan without compiling it.
/// Returns an empty string when the plan has a shape the emitter does
/// not support (callers fall back to the VM). Exposed for tests.
std::string renderKernelSource(const exec::ExecutablePlan &Plan);

/// Number of fallback warning lines printed so far (0 or 1: the warning
/// is emitted once per process). Exposed for tests.
uint64_t jitWarningsEmitted();

} // namespace codegen
} // namespace parrec

#endif // PARREC_CODEGEN_NATIVEJIT_H
