//===- NativeJit.cpp - Native host JIT for executable plans -----------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "codegen/NativeJit.h"

#include "codegen/LogSpace.h"
#include "exec/Plan.h"
#include "obs/Metrics.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>

#include <dlfcn.h>
#include <unistd.h>

using namespace parrec;
using namespace parrec::codegen;

JitKernel::~JitKernel() {
  if (Handle)
    ::dlclose(Handle);
}

//===----------------------------------------------------------------------===//
// Binding: mirrors BytecodeVM::bind field-for-field.
//===----------------------------------------------------------------------===//

void JitBinding::bind(const BytecodeProgram &Prog, const Evaluator &Eval) {
  const std::vector<ArgValue> &Bound = Eval.boundArgs();
  const std::vector<HmmLogCache> &Caches = Eval.hmmCaches();
  assert(Bound.size() == Prog.ParamClasses.size() &&
         "binding does not match the compiled function");

  size_t N = Bound.size();
  Seqs.assign(N, JitSeq{nullptr, 0});
  Matrices.assign(N, JitMatrix{});
  Hmms.assign(N, JitHmm{});
  IntArgs.assign(N, 0);
  RealArgs.assign(N, 0.0);
  MatrixStore.clear();
  MatrixStore.resize(N);
  HmmStore.clear();
  HmmStore.resize(N);

  for (size_t P = 0; P != N; ++P) {
    switch (Prog.ParamClasses[P]) {
    case ParamClass::Seq:
      if (const bio::Sequence *S = Bound[P].Seq) {
        Seqs[P].Data = S->data().data();
        Seqs[P].Len = S->length();
      }
      break;
    case ParamClass::Matrix: {
      const bio::SubstitutionMatrix *M = Bound[P].Matrix;
      if (!M)
        break;
      MatrixData &MD = MatrixStore[P];
      unsigned Sz = M->alphabet().size();
      MD.Scores.resize(static_cast<size_t>(Sz) * Sz);
      for (unsigned A = 0; A != Sz; ++A)
        for (unsigned B = 0; B != Sz; ++B)
          MD.Scores[static_cast<size_t>(A) * Sz + B] = M->scoreByIndex(A, B);
      MD.CharIdx.resize(256);
      for (unsigned C = 0; C != 256; ++C)
        MD.CharIdx[C] = M->alphabet().indexOf(static_cast<char>(C));
      Matrices[P] = JitMatrix{MD.Scores.data(), MD.CharIdx.data(),
                              static_cast<int64_t>(Sz), M->defaultScore()};
      break;
    }
    case ParamClass::Hmm: {
      const bio::Hmm *H = Bound[P].Hmm;
      if (!H)
        break;
      HmmData &HD = HmmStore[P];
      const HmmLogCache &Cache = Caches[P];

      unsigned NumStates = H->numStates();
      unsigned Alpha = H->alphabet().size();
      uint64_t Stride = Alpha + 1;
      // Dense log emissions, exactly as the VM builds them: silent
      // states keep all-zero rows, emitting states take the cached log
      // values plus -inf in the trailing out-of-alphabet column.
      HD.Emissions.assign(static_cast<size_t>(NumStates) * Stride, 0.0);
      for (unsigned S = 0; S != NumStates; ++S) {
        const std::vector<double> &Row = Cache.LogEmissions[S];
        if (Row.empty())
          continue;
        double *Dst = HD.Emissions.data() + static_cast<size_t>(S) * Stride;
        for (unsigned C = 0; C != Alpha; ++C)
          Dst[C] = Row[C];
        Dst[Alpha] = NegInfinity;
      }
      HD.CharCol.resize(256);
      for (unsigned C = 0; C != 256; ++C) {
        int Index = H->alphabet().indexOf(static_cast<char>(C));
        HD.CharCol[C] = Index >= 0 ? static_cast<uint64_t>(Index)
                                   : static_cast<uint64_t>(Alpha);
      }

      unsigned NumTrans = H->numTransitions();
      HD.From.resize(NumTrans);
      HD.To.resize(NumTrans);
      for (unsigned T = 0; T != NumTrans; ++T) {
        HD.From[T] = H->transition(T).From;
        HD.To[T] = H->transition(T).To;
      }
      HD.IsStart.resize(NumStates);
      HD.IsEnd.resize(NumStates);
      for (unsigned S = 0; S != NumStates; ++S) {
        HD.IsStart[S] = H->state(S).IsStart ? 1 : 0;
        HD.IsEnd[S] = H->state(S).IsEnd ? 1 : 0;
      }
      // CSR adjacency in the model's own list order, so reductions walk
      // transitions in the VM's exact iteration order.
      HD.AdjInOff.resize(NumStates + 1);
      HD.AdjOutOff.resize(NumStates + 1);
      for (unsigned S = 0; S != NumStates; ++S) {
        HD.AdjInOff[S] = HD.AdjIn.size();
        for (unsigned T : H->transitionsTo(S))
          HD.AdjIn.push_back(T);
        HD.AdjOutOff[S] = HD.AdjOut.size();
        for (unsigned T : H->transitionsFrom(S))
          HD.AdjOut.push_back(T);
      }
      HD.AdjInOff[NumStates] = HD.AdjIn.size();
      HD.AdjOutOff[NumStates] = HD.AdjOut.size();

      JitHmm &JH = Hmms[P];
      JH.LogTrans = Cache.LogTransitionProbs.data();
      JH.Emissions = HD.Emissions.data();
      JH.CharCol = HD.CharCol.data();
      JH.TransFrom = HD.From.data();
      JH.TransTo = HD.To.data();
      JH.StateIsStart = HD.IsStart.data();
      JH.StateIsEnd = HD.IsEnd.data();
      JH.AdjInOff = HD.AdjInOff.data();
      JH.AdjIn = HD.AdjIn.data();
      JH.AdjOutOff = HD.AdjOutOff.data();
      JH.AdjOut = HD.AdjOut.data();
      JH.Stride = Stride;
      break;
    }
    case ParamClass::Int:
      IntArgs[P] = Bound[P].Int;
      break;
    case ParamClass::Real:
      RealArgs[P] = Bound[P].Real;
      break;
    case ParamClass::Unused:
      break;
    }
  }

  Args = JitArgs{};
  Args.Seqs = Seqs.data();
  Args.Matrices = Matrices.data();
  Args.Hmms = Hmms.data();
  Args.IntArgs = IntArgs.data();
  Args.RealArgs = RealArgs.data();
}

//===----------------------------------------------------------------------===//
// C source emission.
//===----------------------------------------------------------------------===//

namespace {

std::string intLit(int64_t V) {
  if (V == std::numeric_limits<int64_t>::min())
    return "(-9223372036854775807LL - 1LL)";
  return std::to_string(V) + "LL";
}

/// Renders one ExecutablePlan as a self-contained C translation unit.
/// Every statement performs at most one floating-point operation (so
/// -ffp-contract=off keeps the op sequence identical to the VM's), real
/// immediates are hexfloat literals, and log-space helpers copy
/// LogSpace.h operation-for-operation.
class CEmitter {
public:
  explicit CEmitter(const exec::ExecutablePlan &Plan)
      : Plan(Plan), Prog(Plan.Program.get()) {}

  std::string render() {
    if (!Prog || Prog->NumRegs == 0 || Plan.Box.numDims() == 0 ||
        Plan.Nest.NumParams != 0 ||
        Prog->NumDims != Plan.Box.numDims() ||
        Plan.Nest.Levels.size() != 1 + static_cast<size_t>(Plan.Box.numDims()))
      return std::string();
    emitPrelude();
    emitKernel();
    return Failed ? std::string() : Out;
  }

private:
  const exec::ExecutablePlan &Plan;
  const BytecodeProgram *Prog;
  std::string Out;
  int Indent = 0;
  int NextRange = 0;
  bool Failed = false;

  void fail() { Failed = true; }

  void line(const char *Fmt, ...) {
    char Buf[2048];
    va_list Ap;
    va_start(Ap, Fmt);
    vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
    va_end(Ap);
    Out.append(static_cast<size_t>(Indent) * 2, ' ');
    Out += Buf;
    Out += '\n';
  }

  std::string realLit(double V) {
    if (std::isnan(V)) {
      fail(); // No portable bit-exact NaN literal; fall back to the VM.
      return "0.0";
    }
    if (std::isinf(V))
      return V > 0 ? "INFINITY" : "-INFINITY";
    char Buf[64];
    snprintf(Buf, sizeof(Buf), "%a", V);
    return Buf;
  }

  /// Affine expression over the nest dimensions, rendered over v0..vN.
  /// Only variables below \p MaxVar may appear (outer loop variables).
  std::string nestAffine(const poly::AffineExpr &E, unsigned MaxVar) {
    std::string S = "(" + intLit(E.constantTerm());
    for (unsigned D = 0; D != E.numDims(); ++D) {
      int64_t C = E.coefficient(D);
      if (C == 0)
        continue;
      if (D >= MaxVar)
        fail(); // Bound references a not-yet-defined loop variable.
      S += " + " + intLit(C) + " * v" + std::to_string(D);
    }
    S += ")";
    return S;
  }

  /// Affine expression over the recursion point, rendered over v1..vN.
  std::string pointAffine(const int64_t *Coeffs, int64_t Bias) {
    std::string S = "(" + intLit(Bias);
    for (unsigned D = 0; D != Prog->NumDims; ++D) {
      if (Coeffs[D] == 0)
        continue;
      S += " + " + intLit(Coeffs[D]) + " * v" + std::to_string(1 + D);
    }
    S += ")";
    return S;
  }

  std::string pointVarList() {
    std::string S;
    for (unsigned D = 0; D != Prog->NumDims; ++D) {
      if (D)
        S += ", ";
      S += "v" + std::to_string(1 + D);
    }
    return S;
  }

  void emitPrelude() {
    line("/* Generated by ParRec NativeJit: one ExecutablePlan, fully");
    line(" * specialised. Bit-identical to the bytecode VM by");
    line(" * construction: one FP op per statement, -ffp-contract=off,");
    line(" * hexfloat immediates, LogSpace.h helpers copied op-for-op. */");
    line("#include <math.h>");
    line("#include <stdint.h>");
    line("");
    line("typedef struct { const char *data; int64_t len; } pr_seq;");
    line("typedef struct { const int64_t *scores; const int64_t *char_idx;");
    line("  int64_t size; int64_t default_score; } pr_matrix;");
    line("typedef struct { const double *log_trans; const double *emissions;");
    line("  const uint64_t *char_col; const uint64_t *trans_from;");
    line("  const uint64_t *trans_to; const uint64_t *state_is_start;");
    line("  const uint64_t *state_is_end; const uint64_t *adj_in_off;");
    line("  const uint64_t *adj_in; const uint64_t *adj_out_off;");
    line("  const uint64_t *adj_out; uint64_t stride; } pr_hmm;");
    line("typedef struct { const pr_seq *seqs; const pr_matrix *matrices;");
    line("  const pr_hmm *hmms; const int64_t *int_args;");
    line("  const double *real_args; double *table;");
    line("  uint64_t cyc_op, cyc_trans, cyc_table, cyc_model; } pr_args;");
    line("typedef struct { uint64_t ops, table_reads, table_writes,");
    line("  model_reads, transcendentals, cells;");
    line("  double table_max, root_value; uint64_t has_root; } pr_slot_t;");
    line("typedef union { int64_t i; double d; } pr_reg;");
    line("");
    line("static inline int64_t pr_ceil_div(int64_t n, int64_t d) {");
    line("  int64_t q = n / d;");
    line("  if (n %% d != 0 && n > 0)");
    line("    ++q;");
    line("  return q;");
    line("}");
    line("static inline int64_t pr_floor_div(int64_t n, int64_t d) {");
    line("  int64_t q = n / d;");
    line("  if (n %% d != 0 && n < 0)");
    line("    --q;");
    line("  return q;");
    line("}");
    line("static double pr_tolog(double linear) {");
    line("  return linear <= 0.0 ? -INFINITY : log(linear);");
    line("}");
    line("static double pr_logaddexp(double la, double lb) {");
    line("  if (la == -INFINITY)");
    line("    return lb;");
    line("  if (lb == -INFINITY)");
    line("    return la;");
    line("  {");
    line("    double hi = la > lb ? la : lb;");
    line("    double lo = la > lb ? lb : la;");
    line("    return hi + log1p(exp(lo - hi));");
    line("  }");
    line("}");
    emitAddr();
    line("");
  }

  /// pr_addr: the table slot of a recursion point, baked from the plan.
  /// Sliding windows replicate SlidingWindowTable::slot (fused strides +
  /// Lemire fastmod); full tables replicate FullTable::flatten.
  void emitAddr() {
    unsigned N = Plan.Box.numDims();
    std::string Params;
    for (unsigned D = 0; D != N; ++D) {
      if (D)
        Params += ", ";
      Params += "int64_t x" + std::to_string(D);
    }
    line("static inline uint64_t pr_addr(%s) {", Params.c_str());
    if (Plan.UseWindow) {
      if (Plan.Sched.Coefficients.size() != N) {
        fail();
        line("}");
        return;
      }
      // Same stride walk as the SlidingWindowTable constructor.
      std::vector<uint64_t> Strides(N, 0);
      uint64_t BaseIndex = 0;
      uint64_t Stride = 1;
      for (unsigned D = N; D-- > 0;) {
        if (D == Plan.WindowDropDim)
          continue;
        Strides[D] = Stride;
        BaseIndex += static_cast<uint64_t>(Plan.Box.Lower[D]) * Stride;
        Stride *= static_cast<uint64_t>(Plan.Box.extent(D));
      }
      uint64_t PlaneSize = Stride;
      uint64_t NumPlanes = static_cast<uint64_t>(Plan.WindowDepth) + 1;
      uint64_t ModMagic =
          std::numeric_limits<uint64_t>::max() / NumPlanes + 1;
      int64_t MinPartition = Plan.Sched.minOver(Plan.Box);

      std::string Part = "(" + intLit(0);
      std::string Index = "0ULL";
      for (unsigned D = 0; D != N; ++D) {
        int64_t C = Plan.Sched.Coefficients[D];
        if (C != 0)
          Part += " + " + intLit(C) + " * x" + std::to_string(D);
        if (Strides[D] != 0)
          Index += " + " + std::to_string(Strides[D]) + "ULL * (uint64_t)x" +
                   std::to_string(D);
      }
      Part += ")";
      line("  int64_t wp = %s;", Part.c_str());
      line("  uint64_t wi = %s;", Index.c_str());
      line("  uint64_t wx = (uint64_t)(wp - %s);", intLit(MinPartition).c_str());
      line("  uint64_t wplane = (uint64_t)(");
      line("      (unsigned __int128)(%" PRIu64 "ULL * wx) * %" PRIu64
           "ULL >> 64);",
           ModMagic, NumPlanes);
      line("  return wplane * %" PRIu64 "ULL + (wi - %" PRIu64 "ULL);",
           PlaneSize, BaseIndex);
    } else {
      // Same stride walk as the FullTable constructor.
      std::vector<uint64_t> Strides(N, 0);
      uint64_t Stride = 1;
      for (unsigned D = N; D-- > 0;) {
        Strides[D] = Stride;
        Stride *= static_cast<uint64_t>(Plan.Box.extent(D));
      }
      std::string Index = "0ULL";
      for (unsigned D = 0; D != N; ++D)
        Index += " + (uint64_t)(x" + std::to_string(D) + " - " +
                 intLit(Plan.Box.Lower[D]) + ") * " +
                 std::to_string(Strides[D]) + "ULL";
      line("  return %s;", Index.c_str());
    }
    line("}");
  }

  void emitKernel() {
    line("void parrec_scan(const pr_args *a, int64_t p, uint32_t t_begin,");
    line("                 uint32_t t_end, uint32_t n_threads,");
    line("                 int32_t check_root, pr_slot_t *slot,");
    line("                 uint64_t *thread_cycles) {");
    ++Indent;
    line("pr_reg r[%u];", Prog->NumRegs);
    line("(void)n_threads;");
    line("if (p < %s || p > %s)", intLit(Plan.FirstPartition).c_str(),
         intLit(Plan.LastPartition).c_str());
    line("  return;");
    line("const int64_t v0 = p;");
    line("for (uint32_t t = t_begin; t != t_end; ++t) {");
    ++Indent;
    line("uint64_t cyc = 0;");
    bool Striped = Plan.Nest.threadedLevel().has_value();
    if (!Striped) {
      // No space loop to stripe: every point belongs to simulated
      // thread 0, exactly as forEachPointForThread assigns it.
      line("if (t == 0u) {");
      ++Indent;
    }
    emitNestLevel(1);
    if (!Striped) {
      --Indent;
      line("}");
    }
    line("thread_cycles[t] = cyc;");
    --Indent;
    line("}");
    --Indent;
    line("}");
  }

  void emitNestLevel(unsigned L) {
    if (Failed)
      return;
    if (L == Plan.Nest.Levels.size()) {
      emitCell();
      return;
    }
    const poly::LoopLevel &Level = Plan.Nest.Levels[L];
    if (Level.isFixed()) {
      if (Level.FixedDivisor == 1) {
        line("{");
        ++Indent;
        line("const int64_t v%u = %s;", L,
             nestAffine(*Level.FixedNumerator, L).c_str());
        emitNestLevel(L + 1);
        --Indent;
        line("}");
      } else {
        line("{");
        ++Indent;
        line("int64_t n%u = %s;", L,
             nestAffine(*Level.FixedNumerator, L).c_str());
        line("if (n%u %% %s == 0) {", L, intLit(Level.FixedDivisor).c_str());
        ++Indent;
        line("const int64_t v%u = n%u / %s;", L, L,
             intLit(Level.FixedDivisor).c_str());
        emitNestLevel(L + 1);
        --Indent;
        line("}");
        --Indent;
        line("}");
      }
      return;
    }
    if (Level.Lower.empty() || Level.Upper.empty()) {
      fail(); // Generated loops must be bounded.
      return;
    }
    line("{");
    ++Indent;
    // Max of the ceil-divided lower bounds, min of the floor-divided
    // upper bounds, in LoopNest::evalLower/evalUpper order.
    line("int64_t lo%u = pr_ceil_div(%s, %s);", L,
         nestAffine(Level.Lower[0].Numerator, L).c_str(),
         intLit(Level.Lower[0].Divisor).c_str());
    for (size_t B = 1; B < Level.Lower.size(); ++B) {
      line("{");
      line("  int64_t b = pr_ceil_div(%s, %s);",
           nestAffine(Level.Lower[B].Numerator, L).c_str(),
           intLit(Level.Lower[B].Divisor).c_str());
      line("  if (b > lo%u)", L);
      line("    lo%u = b;", L);
      line("}");
    }
    line("int64_t hi%u = pr_floor_div(%s, %s);", L,
         nestAffine(Level.Upper[0].Numerator, L).c_str(),
         intLit(Level.Upper[0].Divisor).c_str());
    for (size_t B = 1; B < Level.Upper.size(); ++B) {
      line("{");
      line("  int64_t b = pr_floor_div(%s, %s);",
           nestAffine(Level.Upper[B].Numerator, L).c_str(),
           intLit(Level.Upper[B].Divisor).c_str());
      line("  if (b < hi%u)", L);
      line("    hi%u = b;", L);
      line("}");
    }
    bool ThisStriped = Plan.Nest.threadedLevel() &&
                       *Plan.Nest.threadedLevel() == L;
    // With one simulated thread the stripe start/step degenerate to
    // lo/1, so the striped form is exact for every thread count.
    if (ThisStriped)
      line("for (int64_t v%u = lo%u + (int64_t)t; v%u <= hi%u; "
           "v%u += (int64_t)n_threads) {",
           L, L, L, L, L);
    else
      line("for (int64_t v%u = lo%u; v%u <= hi%u; ++v%u) {", L, L, L, L, L);
    ++Indent;
    emitNestLevel(L + 1);
    --Indent;
    line("}");
    --Indent;
    line("}");
  }

  void emitCell() {
    line("{");
    ++Indent;
    line("uint64_t d_ops = 0, d_tr = 0, d_tw = 0, d_mr = 0, d_tc = 0;");
    emitRange(0, static_cast<uint32_t>(Prog->Code.size()));
    const char *Conv = nullptr;
    switch (Prog->Conv) {
    case ResultConv::RealSlot:
      Conv = "r[%d].d";
      break;
    case ResultConv::IntSlot:
      Conv = "(double)r[%d].i";
      break;
    case ResultConv::BoolSlot:
      Conv = "r[%d].i ? 1.0 : 0.0";
      break;
    case ResultConv::LogRealSlot:
      Conv = "pr_tolog(r[%d].d)";
      break;
    case ResultConv::LogIntSlot:
      Conv = "pr_tolog((double)r[%d].i)";
      break;
    }
    std::string ConvExpr;
    {
      char Buf[64];
      snprintf(Buf, sizeof(Buf), Conv, Prog->ResultReg);
      ConvExpr = Buf;
    }
    line("double cv = %s;", ConvExpr.c_str());
    line("a->table[pr_addr(%s)] = cv;", pointVarList().c_str());
    line("d_tw += 1ULL;"); // The cell's own store, as evalCell charges it.
    line("slot->ops += d_ops;");
    line("slot->table_reads += d_tr;");
    line("slot->table_writes += d_tw;");
    line("slot->model_reads += d_mr;");
    line("slot->transcendentals += d_tc;");
    line("cyc += d_ops * a->cyc_op + d_tc * a->cyc_trans");
    line("    + (d_tr + d_tw) * a->cyc_table + d_mr * a->cyc_model;");
    line("slot->cells += 1ULL;");
    line("if (cv > slot->table_max)");
    line("  slot->table_max = cv;");
    std::string RootCond = "check_root";
    for (unsigned D = 0; D != Prog->NumDims; ++D)
      RootCond += " && v" + std::to_string(1 + D) + " == " +
                  intLit(Plan.Box.Upper[D]);
    line("if (%s) {", RootCond.c_str());
    line("  slot->root_value = cv;");
    line("  slot->has_root = 1ULL;");
    line("}");
    --Indent;
    line("}");
  }

  /// Emits the instruction range [Pc, End), the unit the VM's execRange
  /// runs: its own packed cost accumulator (flushed into the wide lanes
  /// on every exit path) and function-unique labels for the structured
  /// forward jumps inside it.
  void emitRange(uint32_t Pc, uint32_t End) {
    int Rid = NextRange++;
    std::set<uint32_t> Targets;
    for (uint32_t Q = Pc; Q < End && !Failed;) {
      const Instr &In = Prog->Code[Q];
      if (In.Op == Opcode::JumpIfFalse || In.Op == Opcode::Jump) {
        uint32_t T = static_cast<uint32_t>(In.Op == Opcode::Jump ? In.A
                                                                 : In.B);
        if (T <= Q || T > End)
          fail(); // Only structured forward jumps within the range.
        Targets.insert(T);
      }
      if (In.Op == Opcode::Reduce) {
        uint32_t BodyEnd = Prog->Reduces[static_cast<size_t>(In.A)].BodyEnd;
        if (BodyEnd <= Q || BodyEnd > End) {
          fail();
          return;
        }
        Q = BodyEnd;
      } else {
        ++Q;
      }
    }
    line("uint64_t pk%d = 0;", Rid);
    for (uint32_t Q = Pc; Q < End && !Failed;) {
      if (Targets.count(Q))
        line("L%d_%u: ;", Rid, Q);
      const Instr &In = Prog->Code[Q];
      // The VM charges an instruction's packed cost at dispatch, before
      // executing it (jump targets included), so the charge precedes
      // the statement and follows the label.
      if (In.Cost)
        line("pk%d += 0x%" PRIx64 "ULL;", Rid, In.Cost);
      if (In.Op == Opcode::Reduce) {
        emitReduce(In, Q);
        Q = Prog->Reduces[static_cast<size_t>(In.A)].BodyEnd;
        continue;
      }
      emitInstr(In, Rid);
      ++Q;
    }
    if (Targets.count(End))
      line("L%d_%u: ;", Rid, End);
    line("d_ops += pk%d & 0xFFFFULL;", Rid);
    line("d_tr += (pk%d >> 16) & 0xFFFFULL;", Rid);
    line("d_mr += (pk%d >> 32) & 0xFFFFULL;", Rid);
    line("d_tc += pk%d >> 48;", Rid);
  }

  void emitReduce(const Instr &In, uint32_t Pc) {
    const ReduceDesc &Rd = Prog->Reduces[static_cast<size_t>(In.A)];
    const char *Off = Rd.OverIncoming ? "adj_in_off" : "adj_out_off";
    const char *Arr = Rd.OverIncoming ? "adj_in" : "adj_out";
    bool IntAcc = Rd.AccKind == ReduceDesc::Acc::Int;
    line("{");
    ++Indent;
    line("const pr_hmm *h = &a->hmms[%u];", Rd.HmmParam);
    line("uint64_t rs = (uint64_t)(uint32_t)r[%d].i;", Rd.StateReg);
    line("const uint64_t *rset = h->%s + h->%s[rs];", Arr, Off);
    line("uint64_t rn = h->%s[rs + 1] - h->%s[rs];", Off, Off);
    // Accumulator identities, exactly as the VM initialises them.
    switch (Rd.Kind) {
    case lang::ReductionKind::Sum:
      if (IntAcc)
        line("int64_t acc = 0;");
      else if (Rd.AccKind == ReduceDesc::Acc::Prob)
        line("double acc = -INFINITY;");
      else
        line("double acc = 0.0;");
      break;
    case lang::ReductionKind::Max:
      if (IntAcc)
        line("int64_t acc = %s;",
             intLit(std::numeric_limits<int64_t>::min()).c_str());
      else
        line("double acc = -INFINITY;");
      break;
    case lang::ReductionKind::Min:
      if (IntAcc)
        line("int64_t acc = %s;",
             intLit(std::numeric_limits<int64_t>::max()).c_str());
      else
        line("double acc = INFINITY;");
      break;
    }
    bool NeedFirst = Rd.Kind != lang::ReductionKind::Sum;
    if (NeedFirst)
      line("int rfirst = 1;");
    line("for (uint64_t re = 0; re != rn; ++re) {");
    ++Indent;
    line("r[%d].i = (int64_t)rset[re];", Rd.VarReg);
    line("{");
    ++Indent;
    emitRange(Pc + 1, Rd.BodyEnd);
    --Indent;
    line("}");
    // Acc.add(ElemCost): the wide per-element accumulation charge.
    if (Rd.ElemCost.Ops)
      line("d_ops += %uULL;", Rd.ElemCost.Ops);
    if (Rd.ElemCost.TableReads)
      line("d_tr += %uULL;", Rd.ElemCost.TableReads);
    if (Rd.ElemCost.TableWrites)
      line("d_tw += %uULL;", Rd.ElemCost.TableWrites);
    if (Rd.ElemCost.ModelReads)
      line("d_mr += %uULL;", Rd.ElemCost.ModelReads);
    if (Rd.ElemCost.Transcendentals)
      line("d_tc += %uULL;", Rd.ElemCost.Transcendentals);
    const char *Slot = IntAcc ? "i" : "d";
    switch (Rd.Kind) {
    case lang::ReductionKind::Sum:
      if (Rd.AccKind == ReduceDesc::Acc::Prob)
        line("acc = pr_logaddexp(acc, r[%d].d);", Rd.BodyReg);
      else
        line("acc += r[%d].%s;", Rd.BodyReg, Slot);
      break;
    case lang::ReductionKind::Min:
      // std::min(acc, body) selects body only on strict body < acc.
      line("acc = rfirst ? r[%d].%s : (r[%d].%s < acc ? r[%d].%s : acc);",
           Rd.BodyReg, Slot, Rd.BodyReg, Slot, Rd.BodyReg, Slot);
      break;
    case lang::ReductionKind::Max:
      // std::max(acc, body) selects body only on strict acc < body.
      line("acc = rfirst ? r[%d].%s : (acc < r[%d].%s ? r[%d].%s : acc);",
           Rd.BodyReg, Slot, Rd.BodyReg, Slot, Rd.BodyReg, Slot);
      break;
    }
    if (NeedFirst)
      line("rfirst = 0;");
    --Indent;
    line("}");
    line("r[%d].%s = acc;", Rd.DstReg, Slot);
    --Indent;
    line("}");
  }

  void emitTableRead(const Instr &In) {
    const CallDesc &Cd = Prog->Calls[static_cast<size_t>(In.B)];
    if (Cd.NumArgs != Prog->NumDims || Cd.NumArgs > 8) {
      fail();
      return;
    }
    line("{");
    ++Indent;
    std::string ArgList;
    for (unsigned A = 0; A != Cd.NumArgs; ++A) {
      const CallArg &Ca = Prog->CallArgsPool[Cd.FirstArg + A];
      if (Ca.Reg >= 0)
        line("int64_t tg%u = r[%d].i;", A, Ca.Reg);
      else
        line("int64_t tg%u = %s;", A,
             pointAffine(&Prog->AffinePool[Ca.CoeffOffset], Ca.Bias).c_str());
      if (A)
        ArgList += ", ";
      ArgList += "tg" + std::to_string(A);
    }
    line("double tv = a->table[pr_addr(%s)];", ArgList.c_str());
    switch (In.Op) {
    case Opcode::TableReadReal:
      line("r[%d].d = tv;", In.A);
      break;
    case Opcode::TableReadBool:
      line("r[%d].i = tv != 0.0;", In.A);
      break;
    case Opcode::TableReadInt:
      line("r[%d].i = (int64_t)llround(tv);", In.A);
      break;
    default:
      fail();
      break;
    }
    --Indent;
    line("}");
  }

  void emitInstr(const Instr &In, int Rid) {
    int A = In.A, B = In.B, C = In.C, D = In.D;
    switch (In.Op) {
    case Opcode::ConstInt:
      line("r[%d].i = %s;", A, intLit(In.Imm.I).c_str());
      break;
    case Opcode::ConstReal:
      line("r[%d].d = %s;", A, realLit(In.Imm.D).c_str());
      break;
    case Opcode::Move:
      line("r[%d] = r[%d];", A, B);
      break;
    case Opcode::LoadPoint:
      line("r[%d].i = v%d;", A, 1 + B);
      break;
    case Opcode::LoadArgInt:
      line("r[%d].i = a->int_args[%d];", A, B);
      break;
    case Opcode::LoadArgReal:
      line("r[%d].d = a->real_args[%d];", A, B);
      break;
    case Opcode::IntToReal:
      line("r[%d].d = (double)r[%d].i;", A, B);
      break;
    case Opcode::LogOf:
      line("r[%d].d = pr_tolog(r[%d].d);", A, B);
      break;
    case Opcode::AddInt:
      line("r[%d].i = r[%d].i + r[%d].i;", A, B, C);
      break;
    case Opcode::SubInt:
      line("r[%d].i = r[%d].i - r[%d].i;", A, B, C);
      break;
    case Opcode::MulInt:
      line("r[%d].i = r[%d].i * r[%d].i;", A, B, C);
      break;
    case Opcode::DivInt:
      line("r[%d].i = r[%d].i == 0 ? 0 : r[%d].i / r[%d].i;", A, C, B, C);
      break;
    case Opcode::MinInt:
      line("r[%d].i = r[%d].i < r[%d].i ? r[%d].i : r[%d].i;", A, B, C, B,
           C);
      break;
    case Opcode::MaxInt:
      line("r[%d].i = r[%d].i > r[%d].i ? r[%d].i : r[%d].i;", A, B, C, B,
           C);
      break;
    case Opcode::AddReal:
      line("r[%d].d = r[%d].d + r[%d].d;", A, B, C);
      break;
    case Opcode::SubReal:
      line("r[%d].d = r[%d].d - r[%d].d;", A, B, C);
      break;
    case Opcode::MulReal:
      line("r[%d].d = r[%d].d * r[%d].d;", A, B, C);
      break;
    case Opcode::DivReal:
      line("r[%d].d = r[%d].d / r[%d].d;", A, B, C);
      break;
    case Opcode::MinReal:
      line("r[%d].d = r[%d].d < r[%d].d ? r[%d].d : r[%d].d;", A, B, C, B,
           C);
      break;
    case Opcode::MaxReal:
      line("r[%d].d = r[%d].d > r[%d].d ? r[%d].d : r[%d].d;", A, B, C, B,
           C);
      break;
    case Opcode::LogMul:
      line("r[%d].d = r[%d].d + r[%d].d;", A, B, C);
      break;
    case Opcode::LogDiv:
      line("r[%d].d = r[%d].d - r[%d].d;", A, B, C);
      break;
    case Opcode::LogSum:
      line("r[%d].d = pr_logaddexp(r[%d].d, r[%d].d);", A, B, C);
      break;
    case Opcode::CmpLtReal:
      line("r[%d].i = r[%d].d < r[%d].d;", A, B, C);
      break;
    case Opcode::CmpLeReal:
      line("r[%d].i = r[%d].d <= r[%d].d;", A, B, C);
      break;
    case Opcode::CmpGtReal:
      line("r[%d].i = r[%d].d > r[%d].d;", A, B, C);
      break;
    case Opcode::CmpGeReal:
      line("r[%d].i = r[%d].d >= r[%d].d;", A, B, C);
      break;
    case Opcode::CmpEqReal:
      line("r[%d].i = r[%d].d == r[%d].d;", A, B, C);
      break;
    case Opcode::CmpNeReal:
      line("r[%d].i = r[%d].d != r[%d].d;", A, B, C);
      break;
    case Opcode::CmpEqInt:
      line("r[%d].i = r[%d].i == r[%d].i;", A, B, C);
      break;
    case Opcode::CmpNeInt:
      line("r[%d].i = r[%d].i != r[%d].i;", A, B, C);
      break;
    case Opcode::JumpIfFalse:
      line("if (!r[%d].i)", A);
      line("  goto L%d_%u;", Rid, static_cast<uint32_t>(B));
      break;
    case Opcode::Jump:
      line("goto L%d_%u;", Rid, static_cast<uint32_t>(A));
      break;
    case Opcode::TableReadReal:
    case Opcode::TableReadBool:
    case Opcode::TableReadInt:
      emitTableRead(In);
      break;
    case Opcode::SeqChar:
      line("r[%d].i = (int64_t)a->seqs[%d].data[r[%d].i];", A, B, C);
      break;
    case Opcode::MatrixScore:
      line("{");
      line("  const pr_matrix *m = &a->matrices[%d];", B);
      line("  int64_t ia = m->char_idx[(uint8_t)(char)r[%d].i];", C);
      line("  int64_t ib = m->char_idx[(uint8_t)(char)r[%d].i];", D);
      line("  r[%d].i = (ia < 0 || ib < 0)", A);
      line("      ? m->default_score : m->scores[ia * m->size + ib];");
      line("}");
      break;
    case Opcode::TransStart:
      line("r[%d].i = (int64_t)a->hmms[%d].trans_from[(uint32_t)r[%d].i];",
           A, B, C);
      break;
    case Opcode::TransEnd:
      line("r[%d].i = (int64_t)a->hmms[%d].trans_to[(uint32_t)r[%d].i];", A,
           B, C);
      break;
    case Opcode::TransLogProb:
      line("r[%d].d = a->hmms[%d].log_trans[(uint64_t)r[%d].i];", A, B, C);
      break;
    case Opcode::StateIsStart:
      line("r[%d].i = "
           "(int64_t)a->hmms[%d].state_is_start[(uint32_t)r[%d].i];",
           A, B, C);
      break;
    case Opcode::StateIsEnd:
      line("r[%d].i = (int64_t)a->hmms[%d].state_is_end[(uint32_t)r[%d].i];",
           A, B, C);
      break;
    case Opcode::Emission:
      line("{");
      line("  const pr_hmm *h = &a->hmms[%d];", B);
      line("  r[%d].d = h->emissions[(uint64_t)r[%d].i * h->stride", A, C);
      line("      + h->char_col[(uint8_t)(char)r[%d].i]];", D);
      line("}");
      break;
    case Opcode::Reduce:
      fail(); // Handled by emitRange; reaching here is a logic error.
      break;
    default:
      fail(); // Unknown opcode: fall back to the VM.
      break;
    }
  }
};

} // namespace

std::string codegen::renderKernelSource(const exec::ExecutablePlan &Plan) {
  return CEmitter(Plan).render();
}

//===----------------------------------------------------------------------===//
// Compilation, disk cache and fallback.
//===----------------------------------------------------------------------===//

namespace {

std::atomic<uint64_t> WarningsPrinted{0};

void warnOnce(const char *Reason) {
  uint64_t Expected = 0;
  if (WarningsPrinted.compare_exchange_strong(Expected, 1))
    std::fprintf(stderr,
                 "parrec: warning: native jit unavailable (%s); "
                 "falling back to the bytecode VM\n",
                 Reason);
}

std::shared_ptr<const JitKernel> fallBack(const char *Reason) {
  warnOnce(Reason);
  obs::MetricsRegistry::global().add("jit.fallbacks");
  obs::MetricsRegistry::global().add("jit.cache_events",
                                     obs::Labels{{"event", "fallback"}});
  return nullptr;
}

uint64_t fnv1a(std::string_view S, uint64_t H = 0xcbf29ce484222325ULL) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

std::string resolveCacheDir(const std::string &Override) {
  if (!Override.empty())
    return Override;
  for (const char *Var : {"ParRec_JIT_CACHE", "PARREC_JIT_CACHE"})
    if (const char *E = std::getenv(Var); E && *E)
      return E;
  if (const char *Home = std::getenv("HOME"); Home && *Home)
    return std::string(Home) + "/.cache/parrec-jit";
  return "/tmp/parrec-jit";
}

std::shared_ptr<const JitKernel> tryLoad(const std::string &SoPath) {
  void *Handle = ::dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle)
    return nullptr;
  void *Sym = ::dlsym(Handle, "parrec_scan");
  if (!Sym) {
    ::dlclose(Handle);
    return nullptr;
  }
  return std::make_shared<JitKernel>(
      Handle, reinterpret_cast<JitKernelFn>(Sym));
}

} // namespace

uint64_t codegen::jitWarningsEmitted() { return WarningsPrinted.load(); }

std::shared_ptr<const JitKernel>
codegen::compileKernel(const exec::ExecutablePlan &Plan,
                       const JitCompileOptions &Opts) {
  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();

  std::string Source = renderKernelSource(Plan);
  if (Source.empty())
    return fallBack("unsupported plan or cell-body shape");

  std::string Dir = resolveCacheDir(Opts.CacheDir);
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec)
    return fallBack("cannot create the jit cache directory");

  // Cache key: schedule fingerprint mixed into a hash of the emitted
  // source (which already bakes the box, the window decision and the
  // program), so any plan-visible change misses.
  uint64_t Key = fnv1a(Source) ^ (Plan.Sched.fingerprint() * 0x9e3779b97f4a7c15ULL);
  char Hex[24];
  snprintf(Hex, sizeof(Hex), "%016" PRIx64, Key);
  std::string SoPath = Dir + "/k" + Hex + ".so";

  if (std::filesystem::exists(SoPath, Ec) && !Ec) {
    if (auto Kernel = tryLoad(SoPath)) {
      Metrics.add("jit.cache_hits");
      Metrics.add("jit.cache_events", obs::Labels{{"event", "hit"}});
      return Kernel;
    }
    // Corrupt or stale entry: drop it and recompile below.
    std::filesystem::remove(SoPath, Ec);
  }

  std::string CPath = Dir + "/k" + Hex + ".c";
  {
    std::ofstream Os(CPath, std::ios::trunc);
    Os << Source;
    if (!Os)
      return fallBack("cannot write the generated source");
  }

  static std::atomic<uint64_t> TmpCounter{0};
  std::string Tmp = SoPath + "." + std::to_string(::getpid()) + "." +
                    std::to_string(TmpCounter.fetch_add(1)) + ".tmp";
  const char *Cc = std::getenv("CC");
  if (!Cc || !*Cc)
    Cc = "cc";
  std::string Cmd = std::string(Cc) +
                    " -O2 -shared -fPIC -ffp-contract=off -o '" + Tmp +
                    "' '" + CPath + "' -lm 2>/dev/null";

  auto T0 = std::chrono::steady_clock::now();
  int Status = std::system(Cmd.c_str());
  auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - T0)
                .count();
  if (Status != 0) {
    std::filesystem::remove(Tmp, Ec);
    return fallBack("host C compiler failed or missing");
  }
  // Atomic publish so concurrent compiles of one plan race benignly.
  if (std::rename(Tmp.c_str(), SoPath.c_str()) != 0) {
    std::filesystem::remove(Tmp, Ec);
    return fallBack("cannot publish the compiled kernel");
  }
  Metrics.add("jit.cache_misses");
  Metrics.add("jit.cache_events", obs::Labels{{"event", "miss"}});
  Metrics.record("jit.compile_ns", static_cast<double>(Ns));

  if (auto Kernel = tryLoad(SoPath))
    return Kernel;
  return fallBack("dlopen of the compiled kernel failed");
}
