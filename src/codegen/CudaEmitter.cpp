//===- CudaEmitter.cpp - CUDA C source synthesis ------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "codegen/CudaEmitter.h"

#include "poly/CPrinter.h"
#include "poly/LoopGen.h"

#include <cassert>

using namespace parrec;
using namespace parrec::codegen;
using namespace parrec::lang;

namespace {

/// Statement-level lowering of the DSL body: every expression becomes a
/// named temporary so branching and reductions can be emitted as
/// statements.
class CellEmitter {
public:
  CellEmitter(const FunctionDecl &F, const FunctionInfo &Info)
      : F(F), Info(Info) {}

  /// C type of the table cells.
  const char *tableType() const {
    switch (F.ReturnType.Kind) {
    case TypeKind::Int:
    case TypeKind::Bool:
      return "int";
    default:
      return "float";
    }
  }

  /// Emits the whole __device__ cell function.
  std::string emit() {
    Body.clear();
    TempCount = 0;
    std::string Result = emitExpr(F.Body.get());
    std::string Out;
    Out += "__device__ " + std::string(tableType()) + " " + F.Name +
           "_cell(" + cellParams() + ") {\n";
    Out += Body;
    Out += "  return " + Result + ";\n";
    Out += "}\n";
    return Out;
  }

  /// Parameter list shared by the cell function and the kernel.
  std::string cellParams() const {
    std::string Out;
    auto Add = [&](const std::string &Piece) {
      if (!Out.empty())
        Out += ", ";
      Out += Piece;
    };
    for (const Param &P : F.Params) {
      switch (P.ParamType.Kind) {
      case TypeKind::Seq:
        Add("const char *" + P.Name);
        Add("int " + P.Name + "_len");
        break;
      case TypeKind::Matrix:
        Add("const int *" + P.Name);
        Add("int " + P.Name + "_dim");
        break;
      case TypeKind::Hmm:
        // CSR transition tables plus per-state data.
        Add("const int *" + P.Name + "_tr_from");
        Add("const int *" + P.Name + "_tr_to");
        Add("const float *" + P.Name + "_tr_logprob");
        Add("const int *" + P.Name + "_in_off");
        Add("const int *" + P.Name + "_in_tr");
        Add("const int *" + P.Name + "_out_off");
        Add("const int *" + P.Name + "_out_tr");
        Add("const float *" + P.Name + "_emis");
        Add("int " + P.Name + "_alpha");
        Add("const unsigned char *" + P.Name + "_flags");
        break;
      case TypeKind::Int:
        if (!isRecursiveDim(P))
          Add("int " + P.Name);
        break;
      case TypeKind::Float:
      case TypeKind::Prob:
        Add("float " + P.Name);
        break;
      default:
        break;
      }
    }
    Add("const " + std::string(tableType()) + " *farr");
    for (const lang::DimInfo &Dim : Info.Dims) {
      Add("int " + Dim.Name);
      Add("int " + Dim.Name + "_n");
    }
    return Out;
  }

  /// Arguments matching cellParams() at a kernel call site, with the
  /// recursion coordinates supplied as x0..xn-1.
  std::string cellArgs() const {
    std::string Out;
    auto Add = [&](const std::string &Piece) {
      if (!Out.empty())
        Out += ", ";
      Out += Piece;
    };
    for (const Param &P : F.Params) {
      switch (P.ParamType.Kind) {
      case TypeKind::Seq:
        Add(P.Name);
        Add(P.Name + "_len");
        break;
      case TypeKind::Matrix:
        Add(P.Name);
        Add(P.Name + "_dim");
        break;
      case TypeKind::Hmm:
        for (const char *Suffix :
             {"_tr_from", "_tr_to", "_tr_logprob", "_in_off", "_in_tr",
              "_out_off", "_out_tr", "_emis", "_alpha", "_flags"})
          Add(P.Name + std::string(Suffix));
        break;
      case TypeKind::Int:
        if (!isRecursiveDim(P))
          Add(P.Name);
        break;
      case TypeKind::Float:
      case TypeKind::Prob:
        Add(P.Name);
        break;
      default:
        break;
      }
    }
    Add("farr");
    for (unsigned D = 0; D != Info.Dims.size(); ++D) {
      Add("x" + std::to_string(D));
      Add(Info.Dims[D].Name + "_n");
    }
    return Out;
  }

  /// Row-major flattened index into the table for the given coordinate
  /// expressions (dimension extents are the symbolic "<dim>_n").
  std::string tableIndex(const std::vector<std::string> &Coords) const {
    std::string Out;
    for (unsigned D = 0; D != Info.Dims.size(); ++D) {
      if (D == 0) {
        Out = Coords[0];
        continue;
      }
      Out = "(" + Out + ") * " + Info.Dims[D].Name + "_n + (" +
            Coords[D] + ")";
    }
    return Out.empty() ? "0" : Out;
  }

private:
  const FunctionDecl &F;
  const FunctionInfo &Info;
  std::string Body;
  unsigned TempCount = 0;
  unsigned IndentDepth = 1;

  bool isRecursiveDim(const Param &P) const {
    for (const lang::DimInfo &Dim : Info.Dims)
      if (F.Params[Dim.ParamIndex].Name == P.Name)
        return true;
    return false;
  }

  void line(const std::string &Text) {
    Body.append(2 * IndentDepth, ' ');
    Body += Text;
    Body += '\n';
  }

  std::string freshTemp() { return "v" + std::to_string(TempCount++); }

  static const char *cTypeOf(const Type &T) {
    switch (T.Kind) {
    case TypeKind::Float:
    case TypeKind::Prob:
      return "float";
    case TypeKind::Bool:
      return "int";
    case TypeKind::Char:
      return "char";
    default:
      return "int";
    }
  }

  /// Wraps a linear-space value expression into log space when a prob
  /// consumer receives a non-prob operand.
  std::string toLogIfNeeded(const std::string &Value, const Expr *E) {
    if (E->ExprType.Kind == TypeKind::Prob)
      return Value;
    return "parrec_logf(" + Value + ")";
  }

  /// Emits statements computing \p E; returns the value expression (a
  /// temporary name or a simple expression).
  std::string emitExpr(const Expr *E) {
    switch (E->getKind()) {
    case ExprKind::IntLiteral:
      return std::to_string(cast<IntLiteralExpr>(E)->Value);
    case ExprKind::FloatLiteral: {
      char Buffer[64];
      snprintf(Buffer, sizeof(Buffer), "%.9g",
               cast<FloatLiteralExpr>(E)->Value);
      std::string Text = Buffer;
      if (Text.find('.') == std::string::npos &&
          Text.find('e') == std::string::npos &&
          Text.find("inf") == std::string::npos)
        Text += ".0";
      return Text + "f";
    }
    case ExprKind::BoolLiteral:
      return cast<BoolLiteralExpr>(E)->Value ? "1" : "0";
    case ExprKind::CharLiteral:
      return std::string("'") + cast<CharLiteralExpr>(E)->Value + "'";

    case ExprKind::VarRef: {
      const auto *V = cast<VarRefExpr>(E);
      if (V->ParamIndex < 0)
        return V->Name; // Reduction variable (a transition index).
      return V->Name;
    }

    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      std::string L = emitExpr(B->Lhs.get());
      std::string R = emitExpr(B->Rhs.get());
      bool Prob = B->ExprType.Kind == TypeKind::Prob;
      std::string T = freshTemp();
      std::string Decl =
          std::string("const ") + cTypeOf(B->ExprType) + " " + T + " = ";
      if (Prob) {
        std::string LL = toLogIfNeeded(L, B->Lhs.get());
        std::string RL = toLogIfNeeded(R, B->Rhs.get());
        switch (B->Op) {
        case BinaryOp::Mul:
          line(Decl + LL + " + " + RL + ";");
          return T;
        case BinaryOp::Div:
          line(Decl + LL + " - " + RL + ";");
          return T;
        case BinaryOp::Add:
          line(Decl + "parrec_logaddexpf(" + LL + ", " + RL + ");");
          return T;
        case BinaryOp::Min:
          line(Decl + "fminf(" + LL + ", " + RL + ");");
          return T;
        case BinaryOp::Max:
          line(Decl + "fmaxf(" + LL + ", " + RL + ");");
          return T;
        default:
          break;
        }
      }
      switch (B->Op) {
      case BinaryOp::Min:
        line(Decl + "(" + L + ") < (" + R + ") ? (" + L + ") : (" + R +
             ");");
        return T;
      case BinaryOp::Max:
        line(Decl + "(" + L + ") > (" + R + ") ? (" + L + ") : (" + R +
             ");");
        return T;
      default: {
        const char *Op = binaryOpSpelling(B->Op);
        line(Decl + "(" + L + ") " + Op + " (" + R + ");");
        return T;
      }
      }
    }

    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      std::string Cond = emitExpr(I->Condition.get());
      std::string T = freshTemp();
      line(std::string(cTypeOf(I->ExprType)) + " " + T + ";");
      line("if (" + Cond + ") {");
      ++IndentDepth;
      std::string ThenValue = emitExpr(I->ThenExpr.get());
      if (I->ExprType.Kind == TypeKind::Prob)
        ThenValue = toLogIfNeeded(ThenValue, I->ThenExpr.get());
      line(T + " = " + ThenValue + ";");
      --IndentDepth;
      line("} else {");
      ++IndentDepth;
      std::string ElseValue = emitExpr(I->ElseExpr.get());
      if (I->ExprType.Kind == TypeKind::Prob)
        ElseValue = toLogIfNeeded(ElseValue, I->ElseExpr.get());
      line(T + " = " + ElseValue + ";");
      --IndentDepth;
      line("}");
      return T;
    }

    case ExprKind::Call: {
      const auto *C = cast<CallExpr>(E);
      std::vector<std::string> Coords;
      for (const ExprPtr &A : C->Args)
        Coords.push_back(emitExpr(A.get()));
      std::string T = freshTemp();
      line(std::string("const ") + tableType() + " " + T + " = farr[" +
           tableIndex(Coords) + "];");
      return T;
    }

    case ExprKind::SeqIndex: {
      const auto *S = cast<SeqIndexExpr>(E);
      std::string Index = emitExpr(S->Index.get());
      return S->SeqName + "[" + Index + "]";
    }

    case ExprKind::MatrixIndex: {
      const auto *M = cast<MatrixIndexExpr>(E);
      std::string Row = emitExpr(M->Row.get());
      std::string Col = emitExpr(M->Col.get());
      return M->MatrixName + "[parrec_chr(" + Row + ") * " +
             M->MatrixName + "_dim + parrec_chr(" + Col + ")]";
    }

    case ExprKind::Member: {
      const auto *M = cast<MemberExpr>(E);
      std::string Base = emitExpr(M->Base.get());
      std::string H = M->Base->ExprType.RefParam;
      switch (M->Member) {
      case MemberKind::Start:
        return H + "_tr_from[" + Base + "]";
      case MemberKind::End:
        return H + "_tr_to[" + Base + "]";
      case MemberKind::Prob:
        return H + "_tr_logprob[" + Base + "]";
      case MemberKind::IsStart:
        return "(" + H + "_flags[" + Base + "] & 1)";
      case MemberKind::IsEnd:
        return "(" + H + "_flags[" + Base + "] & 2)";
      case MemberKind::Emission: {
        std::string C = emitExpr(M->Arg.get());
        return H + "_emis[(" + Base + ") * " + H + "_alpha + " +
               "parrec_chr(" + C + ")]";
      }
      case MemberKind::TransitionsTo:
      case MemberKind::TransitionsFrom:
        return Base; // Consumed by the reduction loop below.
      }
      return Base;
    }

    case ExprKind::Reduction: {
      const auto *R = cast<ReductionExpr>(E);
      const auto *Domain = cast<MemberExpr>(R->Domain.get());
      std::string State = emitExpr(Domain->Base.get());
      std::string H = Domain->Base->ExprType.RefParam;
      bool Incoming = Domain->Member == MemberKind::TransitionsTo;
      std::string Off = H + (Incoming ? "_in_off" : "_out_off");
      std::string Tr = H + (Incoming ? "_in_tr" : "_out_tr");

      bool Prob = R->ExprType.Kind == TypeKind::Prob;
      std::string Acc = freshTemp();
      std::string Init;
      if (R->Reduction == ReductionKind::Sum)
        Init = Prob ? "-INFINITY" : "0";
      else if (R->Reduction == ReductionKind::Min)
        Init = Prob ? "INFINITY" : "INT_MAX";
      else
        Init = Prob ? "-INFINITY" : "INT_MIN";
      line(std::string(cTypeOf(R->ExprType)) + " " + Acc + " = " + Init +
           ";");
      std::string Iter = freshTemp();
      line("for (int " + Iter + " = " + Off + "[" + State + "]; " + Iter +
           " < " + Off + "[(" + State + ") + 1]; ++" + Iter + ") {");
      ++IndentDepth;
      line("const int " + R->VarName + " = " + Tr + "[" + Iter + "];");
      std::string BodyValue = emitExpr(R->Body.get());
      if (Prob)
        BodyValue = toLogIfNeeded(BodyValue, R->Body.get());
      switch (R->Reduction) {
      case ReductionKind::Sum:
        line(Acc + " = " + (Prob ? "parrec_logaddexpf(" + Acc + ", " +
                                       BodyValue + ");"
                                 : Acc + " + (" + BodyValue + ");"));
        break;
      case ReductionKind::Min:
        line(Acc + " = " + (Prob ? "fminf" : "min") + "(" + Acc + ", " +
             BodyValue + ");");
        break;
      case ReductionKind::Max:
        line(Acc + " = " + (Prob ? "fmaxf" : "max") + "(" + Acc + ", " +
             BodyValue + ");");
        break;
      }
      --IndentDepth;
      line("}");
      return Acc;
    }
    }
    assert(false && "unhandled expression kind");
    return "0";
  }
};

} // namespace

std::string
parrec::codegen::emitHostLaunchStub(const FunctionDecl &F,
                                    const FunctionInfo &Info) {
  CellEmitter Cell(F, Info);
  std::string TableType = Cell.tableType();

  // Host parameters: the kernel parameters without the table pointer and
  // without per-cell coordinates; extents are inputs.
  std::string Params = Cell.cellParams();
  std::string TableParam = "const " + TableType + " *farr";
  size_t Pos = Params.find(TableParam);
  if (Pos != std::string::npos) {
    size_t End = Pos + TableParam.size();
    if (End < Params.size() && Params.compare(End, 2, ", ") == 0)
      End += 2;
    Params.erase(Pos, End - Pos);
  }
  for (const lang::DimInfo &Dim : Info.Dims) {
    std::string Coord = "int " + Dim.Name + ", ";
    size_t C = Params.find(Coord);
    if (C != std::string::npos)
      Params.erase(C, Coord.size());
  }

  std::string Cells;
  for (unsigned D = 0; D != Info.Dims.size(); ++D) {
    if (D)
      Cells += " * ";
    Cells += Info.Dims[D].Name + "_n";
  }

  std::string Out;
  Out += "// Host-side launch sketch: one block computes one problem\n";
  Out += "// (one problem per multiprocessor; launch many blocks for a\n";
  Out += "// database by giving each its own table and arguments).\n";
  Out += TableType + " " + F.Name + "_launch(" + Params + ") {\n";
  Out += "  const size_t cells = (size_t)(" + Cells + ");\n";
  Out += "  " + TableType + " *farr = 0;\n";
  Out += "  cudaMalloc(&farr, cells * sizeof(" + TableType + "));\n";
  Out += "  " + F.Name + "_kernel<<<1, 32>>>(" +
         [&] {
           // Kernel call arguments: cellArgs() minus the per-cell
           // coordinates ("x<d>, ").
           std::string Args = Cell.cellArgs();
           for (unsigned D = 0; D != Info.Dims.size(); ++D) {
             std::string Coord = "x" + std::to_string(D) + ", ";
             size_t C = Args.find(Coord);
             if (C != std::string::npos)
               Args.erase(C, Coord.size());
           }
           return Args;
         }() +
         ");\n";
  Out += "  cudaDeviceSynchronize();\n";
  Out += "  " + TableType + " root = 0;\n";
  Out += "  cudaMemcpy(&root, farr + (cells - 1), sizeof(" + TableType +
         "), cudaMemcpyDeviceToHost);\n";
  Out += "  cudaFree(farr);\n";
  Out += "  return root; // Value at the recursion's root corner.\n";
  Out += "}\n";
  return Out;
}

std::string parrec::codegen::emitCudaKernel(const FunctionDecl &F,
                                            const FunctionInfo &Info,
                                            const solver::Schedule &S) {
  unsigned N = Info.numDims();
  assert(S.numDims() == N && "schedule arity mismatch");

  // Build the symbolic loop nest: one parameter "<dim>_n" per dimension,
  // domain 0 <= x_d <= <dim>_n - 1, scattered by the schedule.
  std::vector<std::string> DomainNames;
  for (const lang::DimInfo &Dim : Info.Dims)
    DomainNames.push_back(Dim.Name + "_n");
  for (const lang::DimInfo &Dim : Info.Dims)
    DomainNames.push_back(Dim.Name);
  poly::Polyhedron Domain(DomainNames);
  for (unsigned D = 0; D != N; ++D) {
    unsigned Var = N + D;
    Domain.addConstraint(poly::Constraint::ge(
        poly::AffineExpr::dim(2 * N, Var)));
    Domain.addConstraint(poly::Constraint::ge(
        poly::AffineExpr::dim(2 * N, D) -
        poly::AffineExpr::dim(2 * N, Var) -
        poly::AffineExpr::constant(2 * N, 1)));
  }
  poly::AffineExpr Scatter(2 * N);
  for (unsigned D = 0; D != N; ++D)
    Scatter.setCoefficient(N + D, S.Coefficients[D]);
  poly::LoopNest Nest = poly::generateLoops(Domain, N, Scatter, "p");

  CellEmitter Cell(F, Info);

  std::string Out;
  Out += "// Synthesized by ParRec from '" + F.signatureStr() + "'\n";
  Out += "// Schedule: S_" + F.Name + "(" ;
  for (unsigned D = 0; D != N; ++D)
    Out += (D ? ", " : "") + Info.Dims[D].Name;
  Out += ") = " + S.str(Info.Recurrence.DimNames) + "\n";
  Out += "#include <cuda_runtime.h>\n";
  Out += "#include <limits.h>\n";
  Out += "#include <math.h>\n\n";
  Out += "#define parrec_chr(c) ((int)(unsigned char)(c))\n";
  Out += "__device__ static inline float parrec_logf(float x) {\n";
  Out += "  return x <= 0.0f ? -INFINITY : logf(x);\n";
  Out += "}\n";
  Out += "__device__ static inline float parrec_logaddexpf(float a, "
         "float b) {\n";
  Out += "  if (a == -INFINITY) return b;\n";
  Out += "  if (b == -INFINITY) return a;\n";
  Out += "  float hi = fmaxf(a, b), lo = fminf(a, b);\n";
  Out += "  return hi + log1pf(expf(lo - hi));\n";
  Out += "}\n\n";
  Out += Cell.emit();
  Out += "\n";

  // The kernel: Figure 10's structure around the generated bounds.
  Out += "__global__ void " + F.Name + "_kernel(" +
         [&] {
           // Kernel parameters are the cell parameters minus the
           // per-cell coordinates (which the loops produce) plus a
           // mutable table pointer.
           std::string P = Cell.cellParams();
           // Replace the const table pointer with a mutable one and drop
           // the per-dimension coordinate arguments "int <dim>,".
           std::string Search = "const " + std::string(Cell.tableType()) +
                                " *farr";
           size_t Pos = P.find(Search);
           if (Pos != std::string::npos)
             P.replace(Pos, Search.size(),
                       std::string(Cell.tableType()) + " *farr");
           for (const lang::DimInfo &Dim : Info.Dims) {
             std::string Coord = "int " + Dim.Name + ", ";
             size_t C = P.find(Coord);
             if (C != std::string::npos)
               P.erase(C, Coord.size());
           }
           return P;
         }() +
         ") {\n";
  // "parrec_tid" avoids collisions with user parameter names like 't'.
  Out += "  const int parrec_tid = threadIdx.x;\n";
  Out += "  const int parrec_tn = blockDim.x;\n";

  const std::vector<std::string> &Names = Nest.NestDimNames;
  auto BoundList = [&](const std::vector<poly::LoopBound> &Bounds,
                       bool Lower) {
    std::string Text;
    for (size_t I = 0; I != Bounds.size(); ++I) {
      std::string One = Bounds[I].Numerator.str(Names);
      if (Bounds[I].Divisor != 1)
        One = std::string(Lower ? "ceil_div(" : "floor_div(") + One + "," +
              std::to_string(Bounds[I].Divisor) + ")";
      if (I == 0) {
        Text = One;
      } else {
        Text = std::string(Lower ? "max(" : "min(") + Text + ", " + One +
               ")";
      }
    }
    return Text;
  };

  unsigned Depth = 1;
  auto Indent = [&] { return std::string(2 * Depth, ' '); };
  std::optional<unsigned> Striped = Nest.threadedLevel();

  std::vector<unsigned> OpenLoops;
  for (unsigned L = 0; L != Nest.Levels.size(); ++L) {
    const poly::LoopLevel &Level = Nest.Levels[L];
    if (Level.isFixed()) {
      std::string Value = Level.FixedNumerator->str(Names);
      if (Level.FixedDivisor != 1) {
        Out += Indent() + "if ((" + Value + ") % " +
               std::to_string(Level.FixedDivisor) + " != 0) continue;\n";
        Value = "(" + Value + ") / " + std::to_string(Level.FixedDivisor);
      }
      Out += Indent() + "const int " + Level.Name + " = " + Value + ";\n";
      continue;
    }
    bool IsStriped = Striped && L == *Striped;
    std::string Lower = BoundList(Level.Lower, true);
    if (IsStriped)
      Lower = "parrec_tid + (" + Lower + ")";
    std::string Step = IsStriped ? Level.Name + " += parrec_tn"
                                 : Level.Name + "++";
    Out += Indent() + "for (int " + Level.Name + " = " + Lower + "; " +
           Level.Name + " <= " + BoundList(Level.Upper, false) + "; " +
           Step + ") {\n";
    ++Depth;
    OpenLoops.push_back(L);
    if (L == 0) {
      // Everything below the time loop runs per partition; barriers go
      // at the bottom of this loop.
    }
  }

  // Reconstructed coordinates and the tabulation statement.
  std::vector<std::string> Coords;
  for (unsigned D = 0; D != N; ++D) {
    Out += Indent() + "const int x" + std::to_string(D) + " = " +
           Info.Dims[D].Name + ";\n";
    Coords.push_back("x" + std::to_string(D));
  }
  Out += Indent() + "farr[" + Cell.tableIndex(Coords) + "] = " + F.Name +
         "_cell(" + Cell.cellArgs() + ");\n";

  // Close the space loops, barrier, close the time loop.
  while (OpenLoops.size() > 1) {
    --Depth;
    Out += Indent() + "}\n";
    OpenLoops.pop_back();
  }
  Out += Indent() + "__syncthreads();\n";
  --Depth;
  Out += Indent() + "}\n";
  Out += "}\n";
  return Out;
}
