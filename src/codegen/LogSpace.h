//===- LogSpace.h - Log-space probability arithmetic --------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The log-space primitives shared by every cell evaluator (the AST
/// tree-walker and the bytecode VM). Keeping a single definition is what
/// guarantees the two backends produce bit-identical probabilities: both
/// compile to the very same floating-point operation sequence.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_CODEGEN_LOGSPACE_H
#define PARREC_CODEGEN_LOGSPACE_H

#include <cmath>
#include <limits>

namespace parrec {
namespace codegen {

inline constexpr double NegInfinity =
    -std::numeric_limits<double>::infinity();

/// Linear -> log conversion; log 0 is -inf.
inline double toLog(double Linear) {
  return Linear <= 0.0 ? NegInfinity : std::log(Linear);
}

/// log(exp(A) + exp(B)) without overflow; the log-space '+'.
inline double logAddExp(double A, double B) {
  if (A == NegInfinity)
    return B;
  if (B == NegInfinity)
    return A;
  double Hi = A > B ? A : B;
  double Lo = A > B ? B : A;
  return Hi + std::log1p(std::exp(Lo - Hi));
}

} // namespace codegen
} // namespace parrec

#endif // PARREC_CODEGEN_LOGSPACE_H
