//===- Device.cpp - CUDA-like execution model simulator ---------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "gpu/Device.h"

#include "obs/Trace.h"

#include <algorithm>
#include <cstdio>
#include <queue>

using namespace parrec;
using namespace parrec::gpu;

GpuRunMetrics &GpuRunMetrics::operator+=(const GpuRunMetrics &Other) {
  Cycles += Other.Cycles;
  Partitions += Other.Partitions;
  CellsComputed += Other.CellsComputed;
  SharedAccesses += Other.SharedAccesses;
  GlobalAccesses += Other.GlobalAccesses;
  TableBytes = std::max(TableBytes, Other.TableBytes);
  BarrierCycles += Other.BarrierCycles;
  ThreadCycles += Other.ThreadCycles;
  CriticalCycles += Other.CriticalCycles;
  Threads = std::max(Threads, Other.Threads);
  return *this;
}

std::string GpuRunMetrics::str(const CostModel &Model) const {
  std::string Out;
  Out += "cycles=" + std::to_string(Cycles);
  Out += " partitions=" + std::to_string(Partitions);
  Out += " cells=" + std::to_string(CellsComputed);
  Out += " shared=" + std::to_string(SharedAccesses);
  Out += " global=" + std::to_string(GlobalAccesses);
  Out += " table_bytes=" + std::to_string(TableBytes);
  Out += " barrier_cycles=" + std::to_string(BarrierCycles);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.4f", occupancy());
  Out += " occupancy=";
  Out += Buf;
  Out += " seconds=" + std::to_string(seconds(Model));
  return Out;
}

uint64_t BlockTimer::closePartition(uint64_t SyncCycles,
                                    int64_t Partition, uint64_t Cells) {
  uint64_t Longest = 0;
  uint64_t Sum = 0;
  unsigned Active = 0;
  for (uint64_t &C : ThreadCycles) {
    Longest = std::max(Longest, C);
    Sum += C;
    Active += C != 0;
    C = 0;
  }
  uint64_t Advance = Longest + SyncCycles;
  Total += Advance;
  Barrier += SyncCycles;
  WorkSum += Sum;
  if (Recording) {
    PartitionSample S;
    S.Partition = Partition;
    S.Cells = Cells;
    S.MaxThreadCycles = Longest;
    S.SumThreadCycles = Sum;
    S.BarrierCycles = SyncCycles;
    S.ActiveThreads = Active;
    S.Threads = numThreads();
    Timeline.push_back(S);
  }
  return Advance;
}

void gpu::emitBlockTimeline(unsigned Block,
                            const std::vector<PartitionSample> &Timeline) {
  if (!obs::Tracer::enabled())
    return;
  obs::Tracer &T = obs::Tracer::instance();
  uint64_t Cursor = 0;
  for (const PartitionSample &S : Timeline) {
    obs::DeviceSlice Slice;
    Slice.Block = Block;
    Slice.Name = "partition " + std::to_string(S.Partition);
    Slice.StartCycles = Cursor;
    Slice.DurCycles = S.MaxThreadCycles;
    Slice.Args = {
        {"partition", std::to_string(S.Partition)},
        {"cells", std::to_string(S.Cells)},
        {"max_thread_cycles", std::to_string(S.MaxThreadCycles)},
        {"sum_thread_cycles", std::to_string(S.SumThreadCycles)},
        {"active_threads", std::to_string(S.ActiveThreads)},
        {"threads", std::to_string(S.Threads)},
    };
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.4f", S.occupancy());
    Slice.Args.push_back({"occupancy", Buf});
    T.recordDevice(std::move(Slice));
    Cursor += S.MaxThreadCycles;
    if (S.BarrierCycles) {
      obs::DeviceSlice BarrierSlice;
      BarrierSlice.Block = Block;
      BarrierSlice.Name = "barrier";
      BarrierSlice.StartCycles = Cursor;
      BarrierSlice.DurCycles = S.BarrierCycles;
      T.recordDevice(std::move(BarrierSlice));
      Cursor += S.BarrierCycles;
    }
  }
}

uint64_t
Device::dispatchProblems(const std::vector<uint64_t> &ProblemCycles) const {
  if (ProblemCycles.empty())
    return 0;
  // Longest-processing-time greedy onto a min-heap of multiprocessor
  // loads: a standard, near-optimal makespan heuristic.
  std::vector<uint64_t> Sorted = ProblemCycles;
  std::sort(Sorted.begin(), Sorted.end(), std::greater<uint64_t>());
  std::priority_queue<uint64_t, std::vector<uint64_t>,
                      std::greater<uint64_t>>
      Loads;
  for (unsigned I = 0; I != Model.NumMultiprocessors; ++I)
    Loads.push(0);
  for (uint64_t Cycles : Sorted) {
    uint64_t Load = Loads.top();
    Loads.pop();
    Loads.push(Load + Cycles);
  }
  uint64_t Makespan = 0;
  while (!Loads.empty()) {
    Makespan = std::max(Makespan, Loads.top());
    Loads.pop();
  }
  return Makespan + Model.KernelLaunchCycles;
}

uint64_t
Device::interTaskCycles(const std::vector<uint64_t> &TaskCycles) const {
  if (TaskCycles.empty())
    return 0;
  unsigned Lanes = Model.totalGpuLanes();
  uint64_t Total = 0;
  for (size_t Begin = 0; Begin < TaskCycles.size(); Begin += Lanes) {
    size_t End = std::min(TaskCycles.size(),
                          Begin + static_cast<size_t>(Lanes));
    uint64_t RoundMax = 0;
    for (size_t I = Begin; I != End; ++I)
      RoundMax = std::max(RoundMax, TaskCycles[I]);
    Total += RoundMax;
  }
  return Total + Model.KernelLaunchCycles;
}
