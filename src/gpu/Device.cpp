//===- Device.cpp - CUDA-like execution model simulator ---------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "gpu/Device.h"

#include <algorithm>
#include <queue>

using namespace parrec;
using namespace parrec::gpu;

GpuRunMetrics &GpuRunMetrics::operator+=(const GpuRunMetrics &Other) {
  Cycles += Other.Cycles;
  Partitions += Other.Partitions;
  CellsComputed += Other.CellsComputed;
  SharedAccesses += Other.SharedAccesses;
  GlobalAccesses += Other.GlobalAccesses;
  TableBytes = std::max(TableBytes, Other.TableBytes);
  return *this;
}

std::string GpuRunMetrics::str(const CostModel &Model) const {
  std::string Out;
  Out += "cycles=" + std::to_string(Cycles);
  Out += " partitions=" + std::to_string(Partitions);
  Out += " cells=" + std::to_string(CellsComputed);
  Out += " shared=" + std::to_string(SharedAccesses);
  Out += " global=" + std::to_string(GlobalAccesses);
  Out += " table_bytes=" + std::to_string(TableBytes);
  Out += " seconds=" + std::to_string(seconds(Model));
  return Out;
}

uint64_t BlockTimer::closePartition(uint64_t SyncCycles) {
  uint64_t Longest = 0;
  for (uint64_t &C : ThreadCycles) {
    Longest = std::max(Longest, C);
    C = 0;
  }
  uint64_t Advance = Longest + SyncCycles;
  Total += Advance;
  return Advance;
}

uint64_t
Device::dispatchProblems(const std::vector<uint64_t> &ProblemCycles) const {
  if (ProblemCycles.empty())
    return 0;
  // Longest-processing-time greedy onto a min-heap of multiprocessor
  // loads: a standard, near-optimal makespan heuristic.
  std::vector<uint64_t> Sorted = ProblemCycles;
  std::sort(Sorted.begin(), Sorted.end(), std::greater<uint64_t>());
  std::priority_queue<uint64_t, std::vector<uint64_t>,
                      std::greater<uint64_t>>
      Loads;
  for (unsigned I = 0; I != Model.NumMultiprocessors; ++I)
    Loads.push(0);
  for (uint64_t Cycles : Sorted) {
    uint64_t Load = Loads.top();
    Loads.pop();
    Loads.push(Load + Cycles);
  }
  uint64_t Makespan = 0;
  while (!Loads.empty()) {
    Makespan = std::max(Makespan, Loads.top());
    Loads.pop();
  }
  return Makespan + Model.KernelLaunchCycles;
}

uint64_t
Device::interTaskCycles(const std::vector<uint64_t> &TaskCycles) const {
  if (TaskCycles.empty())
    return 0;
  unsigned Lanes = Model.totalGpuLanes();
  uint64_t Total = 0;
  for (size_t Begin = 0; Begin < TaskCycles.size(); Begin += Lanes) {
    size_t End = std::min(TaskCycles.size(),
                          Begin + static_cast<size_t>(Lanes));
    uint64_t RoundMax = 0;
    for (size_t I = Begin; I != End; ++I)
      RoundMax = std::max(RoundMax, TaskCycles[I]);
    Total += RoundMax;
  }
  return Total + Model.KernelLaunchCycles;
}
