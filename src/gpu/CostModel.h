//===- CostModel.h - Shared CPU/GPU cycle cost model --------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single cost model both sides of every benchmark share. No GPU is
/// available in this reproduction environment, so GPU executions run on a
/// simulator (see Device.h) and CPU baselines count the same abstract
/// operation/memory events; both are converted to *modelled seconds*
/// here. Defaults approximate the paper's hardware: an NVIDIA GTX 480
/// (15 SMs x 32 cores at 1.4 GHz) and an Intel Xeon E5520 (2.26 GHz).
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_GPU_COSTMODEL_H
#define PARREC_GPU_COSTMODEL_H

#include <cstdint>

namespace parrec {
namespace gpu {

/// Abstract event counts accumulated while evaluating cells. "Ops" are
/// arithmetic/logic operations. Table events touch the DP table, whose
/// residency (shared vs. global) depends on the sliding-window
/// optimisation (Section 4.8). Model events read sequences, substitution
/// matrices and HMM parameters, which are small and treated as staged
/// into shared memory (Section 5.1's placement discussion).
struct CostCounter {
  uint64_t Ops = 0;
  uint64_t TableReads = 0;
  uint64_t TableWrites = 0;
  uint64_t ModelReads = 0;
  /// exp/log pairs (log-sum-exp): expensive libm code on a CPU, cheap
  /// special-function hardware on a GPU. Counting them separately is what
  /// lets the model reflect that asymmetry — and HMMER 3's scaled
  /// linear-space trick, which avoids them entirely.
  uint64_t Transcendentals = 0;

  CostCounter &operator+=(const CostCounter &Other) {
    Ops += Other.Ops;
    TableReads += Other.TableReads;
    TableWrites += Other.TableWrites;
    ModelReads += Other.ModelReads;
    Transcendentals += Other.Transcendentals;
    return *this;
  }
  CostCounter operator-(const CostCounter &Other) const {
    return {Ops - Other.Ops, TableReads - Other.TableReads,
            TableWrites - Other.TableWrites,
            ModelReads - Other.ModelReads,
            Transcendentals - Other.Transcendentals};
  }
  bool operator==(const CostCounter &Other) const = default;

  /// Zeroes all lanes. The hot loops accumulate per-cell deltas into a
  /// reset counter instead of copying whole counters around.
  void reset() { *this = CostCounter(); }

  uint64_t tableAccesses() const { return TableReads + TableWrites; }
};

/// Machine parameters used to turn event counts into modelled time.
struct CostModel {
  // GPU side (GTX-480-like).
  unsigned NumMultiprocessors = 15;
  unsigned CoresPerMultiprocessor = 32;
  double GpuClockGHz = 1.40;
  uint64_t GpuCyclesPerOp = 2; // Simple in-order cores.
  uint64_t GpuTranscendentalCycles = 8; // SFU expf/logf pair.
  uint64_t GlobalMemLatencyCycles = 400;
  uint64_t SharedMemLatencyCycles = 4;
  uint64_t SyncCycles = 32;            // Single-warp barrier.
  uint64_t KernelLaunchCycles = 20000; // Per problem/kernel dispatch.
  uint64_t SharedMemBytes = 48 * 1024;

  // CPU side (Xeon-E5520-like). DP inner loops are cache-friendly, so
  // memory events are cheap on the CPU; exp/log pairs go through libm.
  double CpuClockGHz = 2.26;
  uint64_t CpuCyclesPerOp = 1;
  uint64_t CpuMemLatencyCycles = 2;
  uint64_t CpuTranscendentalCycles = 20;

  unsigned totalGpuLanes() const {
    return NumMultiprocessors * CoresPerMultiprocessor;
  }

  /// Cycles a GPU lane spends computing one cell with the given events.
  /// \p TableInShared reflects whether the sliding window fits shared
  /// memory.
  uint64_t gpuCellCycles(const CostCounter &C, bool TableInShared) const {
    uint64_t TableLatency = TableInShared ? SharedMemLatencyCycles
                                          : GlobalMemLatencyCycles;
    return C.Ops * GpuCyclesPerOp +
           C.Transcendentals * GpuTranscendentalCycles +
           C.tableAccesses() * TableLatency +
           C.ModelReads * SharedMemLatencyCycles;
  }

  /// Cycles the CPU spends on the given events.
  uint64_t cpuCycles(const CostCounter &C) const {
    return C.Ops * CpuCyclesPerOp +
           C.Transcendentals * CpuTranscendentalCycles +
           (C.tableAccesses() + C.ModelReads) * CpuMemLatencyCycles;
  }

  double gpuSeconds(uint64_t Cycles) const {
    return static_cast<double>(Cycles) / (GpuClockGHz * 1e9);
  }
  double cpuSeconds(uint64_t Cycles) const {
    return static_cast<double>(Cycles) / (CpuClockGHz * 1e9);
  }
};

} // namespace gpu
} // namespace parrec

#endif // PARREC_GPU_COSTMODEL_H
