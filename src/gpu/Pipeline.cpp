//===- Pipeline.cpp - Systolic cross-problem batch pipelining ---------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "gpu/Pipeline.h"

#include "obs/Trace.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <numeric>

using namespace parrec;
using namespace parrec::gpu;

PipelineProfile PipelineProfile::make(
    std::shared_ptr<const std::vector<PartitionSample>> Timeline,
    uint64_t TotalCycles, unsigned Threads) {
  PipelineProfile P;
  P.TotalCycles = TotalCycles;
  P.Threads = Threads;
  if (Timeline && !Timeline->empty()) {
    P.Timeline = std::move(Timeline);
    unsigned Demand = 0;
    for (const PartitionSample &S : *P.Timeline)
      Demand = std::max(Demand, S.ActiveThreads);
    // A problem always holds at least one lane while resident.
    P.DemandLanes = std::max(Demand, 1u);
  } else {
    // No timeline: model the problem as one opaque stage that fills the
    // block, which makes it unpackable and pins its whole duration.
    P.DemandLanes = Threads;
  }
  return P;
}

namespace {

size_t stageCount(const PipelineProfile &P) {
  return P.Timeline ? P.Timeline->size() : 1;
}

uint64_t stageCost(const PipelineProfile &P, size_t Stage) {
  if (!P.Timeline)
    return P.TotalCycles;
  const PartitionSample &S = (*P.Timeline)[Stage];
  return S.MaxThreadCycles + S.BarrierCycles;
}

} // namespace

PipelinePlanner::PipelinePlanner(const CostModel &Model, bool PackSmall,
                                 bool RecordStageStarts)
    : Model(Model), PackSmall(PackSmall),
      RecordStageStarts(RecordStageStarts),
      Mps(std::max(1u, Model.NumMultiprocessors)) {}

bool PipelinePlanner::joinsOpenGroup(const PipelineProfile &Profile) const {
  if (!PackSmall || OpenMembers.empty())
    return false;
  const PipelineProfile &First = OpenProfiles.front();
  // Packed problems share one launch's lockstep stages, so they must
  // agree on block width and stage count, and their lane demands must
  // fit the block side by side.
  if (!Profile.Timeline || !First.Timeline)
    return false;
  if (Profile.Threads != First.Threads)
    return false;
  if (stageCount(Profile) != stageCount(First))
    return false;
  return OpenDemand + Profile.DemandLanes <= Profile.Threads;
}

std::vector<size_t> PipelinePlanner::add(PipelineProfile Profile) {
  assert(!Finished && "add() after finish()");
  size_t Index = Placements.size();
  Placements.emplace_back();
  std::vector<size_t> Sealed;
  if (!joinsOpenGroup(Profile))
    Sealed = sealOpenGroup();
  Placements[Index].LaneOffset = OpenDemand;
  OpenDemand += Profile.DemandLanes;
  OpenMembers.push_back(Index);
  OpenProfiles.push_back(std::move(Profile));
  return Sealed;
}

std::vector<size_t> PipelinePlanner::sealOpenGroup() {
  std::vector<size_t> Sealed = std::move(OpenMembers);
  OpenMembers.clear();
  OpenDemand = 0;
  std::vector<PipelineProfile> Profiles = std::move(OpenProfiles);
  OpenProfiles.clear();
  if (Sealed.empty())
    return Sealed;

  // The packed launch advances in lockstep, so each stage costs the
  // slowest member's slice of it.
  size_t Stages = stageCount(Profiles.front());
  std::vector<uint64_t> Cost(Stages, 0);
  for (const PipelineProfile &P : Profiles)
    for (size_t S = 0; S != Stages; ++S)
      Cost[S] = std::max(Cost[S], stageCost(P, S));
  uint64_t Serial =
      std::accumulate(Cost.begin(), Cost.end(), uint64_t{0});

  // Place the launch on the multiprocessor whose resulting finish is
  // earliest. A launch with fewer stages than a resident predecessor
  // can drain while the predecessor's deeper stages are still in
  // flight, so the candidate's finish is max(FinalFinish, Last), not
  // the new launch's own last stage alone; ties go to the lowest index
  // so the schedule is deterministic.
  unsigned Best = 0;
  uint64_t BestFinish = 0, BestKey = 0;
  std::vector<uint64_t> Finish(Stages), BestStageFinish;
  for (unsigned M = 0; M != Mps.size(); ++M) {
    const std::vector<uint64_t> &Prev = Mps[M].LastFinish;
    uint64_t Last = 0;
    for (size_t S = 0; S != Stages; ++S) {
      uint64_t Start = Last;
      if (S < Prev.size())
        Start = std::max(Start, Prev[S]);
      Last = Start + Cost[S];
      Finish[S] = Last;
    }
    uint64_t Key = std::max(Mps[M].FinalFinish, Last);
    if (!M || Key < BestKey) {
      Best = M;
      BestKey = Key;
      BestFinish = Last;
      BestStageFinish = Finish;
    }
  }

  uint64_t Completion = BestFinish + Model.KernelLaunchCycles;
  std::vector<uint64_t> Starts;
  if (RecordStageStarts) {
    Starts.resize(Stages);
    for (size_t S = 0; S != Stages; ++S)
      Starts[S] =
          BestStageFinish[S] - Cost[S] + Model.KernelLaunchCycles;
  }

  // Stage-finish entries of earlier launches beyond this launch's depth
  // are still live dependencies for deeper successors: carry them
  // forward, clamped to this launch's finish (the pipeline drains in
  // order), and never let the multiprocessor's finish regress.
  Multiprocessor &Mp = Mps[Best];
  for (size_t S = Stages; S < Mp.LastFinish.size(); ++S)
    BestStageFinish.push_back(std::max(Mp.LastFinish[S], BestFinish));
  Mp.LastFinish = std::move(BestStageFinish);
  Mp.FinalFinish = std::max(Mp.FinalFinish, BestFinish);
  Mp.SerialCycles += Serial;
  Mp.Used = true;
  for (size_t Member : Sealed) {
    PipelinePlacement &P = Placements[Member];
    P.Multiprocessor = Best;
    P.Group = NextGroup;
    P.CompletionCycles = Completion;
    P.StageStartCycles = Starts;
  }
  ++NextGroup;
  return Sealed;
}

std::vector<size_t> PipelinePlanner::finish() {
  assert(!Finished && "finish() called twice");
  std::vector<size_t> Sealed = sealOpenGroup();
  Finished = true;

  Stats.Groups = NextGroup;
  uint64_t MaxFinish = 0;
  for (const Multiprocessor &Mp : Mps)
    if (Mp.Used)
      MaxFinish = std::max(MaxFinish, Mp.FinalFinish);
  Stats.MakespanCycles =
      numProblems() ? MaxFinish + Model.KernelLaunchCycles : 0;
  for (const Multiprocessor &Mp : Mps) {
    if (!Mp.Used)
      continue;
    // Back-to-back execution is feasible, so the pipelined finish never
    // exceeds the serial sum; the difference is the recovered overlap.
    uint64_t Overlap = Mp.SerialCycles - Mp.FinalFinish;
    uint64_t Idle = MaxFinish - Mp.FinalFinish;
    Stats.MultiprocessorFinish.push_back(Mp.FinalFinish);
    Stats.MultiprocessorOverlap.push_back(Overlap);
    Stats.MultiprocessorIdle.push_back(Idle);
    Stats.OverlapCycles += Overlap;
    Stats.IdleCycles += Idle;
  }
  return Sealed;
}

void gpu::emitBlockTimeline(unsigned Block,
                            const std::vector<PartitionSample> &Timeline,
                            const std::vector<uint64_t> &StageStarts,
                            unsigned LaneOffset, uint64_t Problem) {
  if (!obs::Tracer::enabled())
    return;
  obs::Tracer &T = obs::Tracer::instance();
  size_t Stages = std::min(Timeline.size(), StageStarts.size());
  for (size_t I = 0; I != Stages; ++I) {
    const PartitionSample &S = Timeline[I];
    obs::DeviceSlice Slice;
    Slice.Block = Block;
    Slice.Name = "p" + std::to_string(Problem) + " partition " +
                 std::to_string(S.Partition);
    Slice.StartCycles = StageStarts[I];
    Slice.DurCycles = S.MaxThreadCycles;
    Slice.Args = {
        {"problem", std::to_string(Problem)},
        {"lane_offset", std::to_string(LaneOffset)},
        {"partition", std::to_string(S.Partition)},
        {"cells", std::to_string(S.Cells)},
        {"max_thread_cycles", std::to_string(S.MaxThreadCycles)},
        {"sum_thread_cycles", std::to_string(S.SumThreadCycles)},
        {"active_threads", std::to_string(S.ActiveThreads)},
        {"threads", std::to_string(S.Threads)},
    };
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.4f", S.occupancy());
    Slice.Args.push_back({"occupancy", Buf});
    T.recordDevice(std::move(Slice));
    if (S.BarrierCycles) {
      obs::DeviceSlice BarrierSlice;
      BarrierSlice.Block = Block;
      BarrierSlice.Name = "barrier";
      BarrierSlice.StartCycles = StageStarts[I] + S.MaxThreadCycles;
      BarrierSlice.DurCycles = S.BarrierCycles;
      BarrierSlice.Args = {{"problem", std::to_string(Problem)}};
      T.recordDevice(std::move(BarrierSlice));
    }
  }
}
