//===- Device.h - CUDA-like execution model simulator -------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulator of the paper's target execution model (Section 1.1): a
/// device made of independent multiprocessors, each running a block of
/// threads in lockstep with barrier synchronisation between partitions
/// and no global synchronisation. The simulator executes real work (the
/// caller's cell evaluations) and accounts cycles per the shared cost
/// model; results are therefore bit-identical to a serial run while
/// timing reflects the parallel structure.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_GPU_DEVICE_H
#define PARREC_GPU_DEVICE_H

#include "gpu/CostModel.h"

#include <cstdint>
#include <string>
#include <vector>

namespace parrec {
namespace gpu {

/// One partition's slice of a block's lockstep timeline (Figure 8's
/// template): how many cells it computed, how long its critical thread
/// ran, what the barrier cost, and how evenly the threads were loaded.
struct PartitionSample {
  /// The schedule time-step this partition executed.
  int64_t Partition = 0;
  uint64_t Cells = 0;
  /// Cycles of the slowest thread — the lockstep advance of the block
  /// (barrier excluded).
  uint64_t MaxThreadCycles = 0;
  /// Cycles summed over all threads (the useful work).
  uint64_t SumThreadCycles = 0;
  /// Barrier cost charged when the partition closed.
  uint64_t BarrierCycles = 0;
  /// Threads that computed at least one cell this partition.
  unsigned ActiveThreads = 0;
  /// Block width the sample was taken under.
  unsigned Threads = 0;

  /// Thread occupancy: mean thread cycles / max thread cycles. 1.0 means
  /// a perfectly balanced lockstep step; low values expose stall from
  /// load imbalance (short diagonals, uneven striping).
  double occupancy() const {
    if (!MaxThreadCycles || !Threads)
      return 1.0;
    return static_cast<double>(SumThreadCycles) /
           (static_cast<double>(Threads) *
            static_cast<double>(MaxThreadCycles));
  }

  friend bool operator==(const PartitionSample &,
                         const PartitionSample &) = default;
};

/// Metrics of one simulated GPU execution.
struct GpuRunMetrics {
  uint64_t Cycles = 0;
  uint64_t Partitions = 0;
  uint64_t CellsComputed = 0;
  uint64_t SharedAccesses = 0;
  uint64_t GlobalAccesses = 0;
  uint64_t TableBytes = 0;
  /// Barrier cycles charged across all partitions (included in Cycles).
  uint64_t BarrierCycles = 0;
  /// Work cycles summed over every thread and partition.
  uint64_t ThreadCycles = 0;
  /// Sum of per-partition critical-path (max-thread) cycles; equals
  /// Cycles - BarrierCycles.
  uint64_t CriticalCycles = 0;
  /// Block width (threads per block) of the run; max when aggregated.
  uint64_t Threads = 0;

  double seconds(const CostModel &Model) const {
    return Model.gpuSeconds(Cycles);
  }

  /// Aggregate thread occupancy: useful work / (block width x critical
  /// path). The lockstep stall fraction is 1 - occupancy().
  double occupancy() const {
    if (!CriticalCycles || !Threads)
      return 1.0;
    return static_cast<double>(ThreadCycles) /
           (static_cast<double>(Threads) *
            static_cast<double>(CriticalCycles));
  }

  GpuRunMetrics &operator+=(const GpuRunMetrics &Other);
  friend bool operator==(const GpuRunMetrics &,
                         const GpuRunMetrics &) = default;
  std::string str(const CostModel &Model) const;
};

/// Tracks the lockstep cost of one block executing one problem:
/// per-partition time is the maximum over its threads, a barrier closes
/// each partition (Figure 8's template). Always aggregates the occupancy
/// totals; with \p RecordTimeline it additionally keeps one
/// PartitionSample per closed partition.
class BlockTimer {
public:
  explicit BlockTimer(unsigned NumThreads, bool RecordTimeline = false)
      : ThreadCycles(NumThreads, 0), Recording(RecordTimeline) {}

  unsigned numThreads() const {
    return static_cast<unsigned>(ThreadCycles.size());
  }

  /// Charges \p Cycles to thread \p ThreadId within the open partition.
  void addThreadCycles(unsigned ThreadId, uint64_t Cycles) {
    ThreadCycles[ThreadId] += Cycles;
  }

  /// Ends the current partition: the block advances by the slowest
  /// thread's cycles plus the barrier cost. Returns that amount and
  /// resets the per-thread accumulators. \p Partition and \p Cells label
  /// the timeline sample when recording.
  uint64_t closePartition(uint64_t SyncCycles, int64_t Partition = 0,
                          uint64_t Cells = 0);

  uint64_t totalCycles() const { return Total; }
  /// Barrier cycles included in totalCycles().
  uint64_t barrierCycles() const { return Barrier; }
  /// Work cycles summed over all threads and partitions.
  uint64_t threadCycleSum() const { return WorkSum; }
  /// Sum of per-partition maxima (totalCycles() - barrierCycles()).
  uint64_t criticalCycles() const { return Total - Barrier; }

  bool recording() const { return Recording; }
  const std::vector<PartitionSample> &timeline() const { return Timeline; }
  std::vector<PartitionSample> takeTimeline() { return std::move(Timeline); }

private:
  std::vector<uint64_t> ThreadCycles;
  uint64_t Total = 0;
  uint64_t Barrier = 0;
  uint64_t WorkSum = 0;
  bool Recording = false;
  std::vector<PartitionSample> Timeline;
};

/// Emits \p Timeline as per-partition slices on simulated-device lane
/// \p Block of the global tracer (no-op when tracing is disabled).
void emitBlockTimeline(unsigned Block,
                       const std::vector<PartitionSample> &Timeline);

/// The device: dispatch policies for laying work onto multiprocessors.
class Device {
public:
  Device() = default;
  explicit Device(CostModel Model) : Model(std::move(Model)) {}

  const CostModel &costModel() const { return Model; }
  CostModel &costModel() { return Model; }

  /// Intra-task dispatch (Section 4.7): each problem occupies one
  /// multiprocessor; problems are placed greedily (longest first) onto
  /// the least-loaded multiprocessor. Returns the makespan in cycles,
  /// including one kernel launch per batch.
  uint64_t dispatchProblems(const std::vector<uint64_t> &ProblemCycles) const;

  /// Inter-task dispatch (one problem per thread, the CUDASW++/GPU-HMMER
  /// style): tasks are processed in submission order in rounds of
  /// totalGpuLanes(); lockstep makes each round cost its maximum task.
  uint64_t interTaskCycles(const std::vector<uint64_t> &TaskCycles) const;

private:
  CostModel Model;
};

} // namespace gpu
} // namespace parrec

#endif // PARREC_GPU_DEVICE_H
