//===- Device.h - CUDA-like execution model simulator -------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulator of the paper's target execution model (Section 1.1): a
/// device made of independent multiprocessors, each running a block of
/// threads in lockstep with barrier synchronisation between partitions
/// and no global synchronisation. The simulator executes real work (the
/// caller's cell evaluations) and accounts cycles per the shared cost
/// model; results are therefore bit-identical to a serial run while
/// timing reflects the parallel structure.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_GPU_DEVICE_H
#define PARREC_GPU_DEVICE_H

#include "gpu/CostModel.h"

#include <cstdint>
#include <string>
#include <vector>

namespace parrec {
namespace gpu {

/// Metrics of one simulated GPU execution.
struct GpuRunMetrics {
  uint64_t Cycles = 0;
  uint64_t Partitions = 0;
  uint64_t CellsComputed = 0;
  uint64_t SharedAccesses = 0;
  uint64_t GlobalAccesses = 0;
  uint64_t TableBytes = 0;

  double seconds(const CostModel &Model) const {
    return Model.gpuSeconds(Cycles);
  }

  GpuRunMetrics &operator+=(const GpuRunMetrics &Other);
  std::string str(const CostModel &Model) const;
};

/// Tracks the lockstep cost of one block executing one problem:
/// per-partition time is the maximum over its threads, a barrier closes
/// each partition (Figure 8's template).
class BlockTimer {
public:
  explicit BlockTimer(unsigned NumThreads)
      : ThreadCycles(NumThreads, 0) {}

  unsigned numThreads() const {
    return static_cast<unsigned>(ThreadCycles.size());
  }

  /// Charges \p Cycles to thread \p ThreadId within the open partition.
  void addThreadCycles(unsigned ThreadId, uint64_t Cycles) {
    ThreadCycles[ThreadId] += Cycles;
  }

  /// Ends the current partition: the block advances by the slowest
  /// thread's cycles plus the barrier cost. Returns that amount and
  /// resets the per-thread accumulators.
  uint64_t closePartition(uint64_t SyncCycles);

  uint64_t totalCycles() const { return Total; }

private:
  std::vector<uint64_t> ThreadCycles;
  uint64_t Total = 0;
};

/// The device: dispatch policies for laying work onto multiprocessors.
class Device {
public:
  Device() = default;
  explicit Device(CostModel Model) : Model(std::move(Model)) {}

  const CostModel &costModel() const { return Model; }
  CostModel &costModel() { return Model; }

  /// Intra-task dispatch (Section 4.7): each problem occupies one
  /// multiprocessor; problems are placed greedily (longest first) onto
  /// the least-loaded multiprocessor. Returns the makespan in cycles,
  /// including one kernel launch per batch.
  uint64_t dispatchProblems(const std::vector<uint64_t> &ProblemCycles) const;

  /// Inter-task dispatch (one problem per thread, the CUDASW++/GPU-HMMER
  /// style): tasks are processed in submission order in rounds of
  /// totalGpuLanes(); lockstep makes each round cost its maximum task.
  uint64_t interTaskCycles(const std::vector<uint64_t> &TaskCycles) const;

private:
  CostModel Model;
};

} // namespace gpu
} // namespace parrec

#endif // PARREC_GPU_DEVICE_H
