//===- Pipeline.h - Systolic cross-problem batch pipelining -------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models systolic overlap between the problems of one batch. The barrier
/// dispatcher (Device::dispatchProblems) runs each problem's partitions
/// back-to-back on its multiprocessor; the pipeline planner instead lets
/// partition k+1 of problem i+1 start as soon as partition k of problem i
/// has released the multiprocessor's stage resource, so a problem's root
/// cell resolves — and its result can be published — long before the
/// batch drains. Small problems whose partitions underfill a block can
/// additionally be packed into one simulated launch with per-problem
/// lane offsets.
///
/// The planner only re-times work that has already been executed: it
/// consumes per-partition timelines and never touches values, costs or
/// per-problem cycle totals, so every observable except the modelled
/// wall clock is bit-identical to the barrier path.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_GPU_PIPELINE_H
#define PARREC_GPU_PIPELINE_H

#include "gpu/Device.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace parrec {
namespace gpu {

/// One problem's modelled execution profile, distilled from the
/// partition timeline its block timer recorded.
struct PipelineProfile {
  /// Per-partition samples; shared with the run result so profiling a
  /// batch does not copy timelines.
  std::shared_ptr<const std::vector<PartitionSample>> Timeline;
  /// The problem's serial cycle total (sum over partitions of
  /// max-thread + barrier cycles). Kept for cross-checking; the planner
  /// never alters it.
  uint64_t TotalCycles = 0;
  /// Block width the problem ran under.
  unsigned Threads = 0;
  /// Lanes the problem actually needs: max ActiveThreads over its
  /// partitions. Packing sums demands, never widths.
  unsigned DemandLanes = 0;

  /// Builds a profile from a recorded timeline. DemandLanes is derived
  /// from the samples; an empty timeline degrades to an unpackable
  /// single stage of \p TotalCycles.
  static PipelineProfile
  make(std::shared_ptr<const std::vector<PartitionSample>> Timeline,
       uint64_t TotalCycles, unsigned Threads);
};

/// Where one problem landed and when its result resolves. Cycles are
/// measured from batch start and include the kernel launch.
struct PipelinePlacement {
  /// Multiprocessor the problem's (packed) launch occupies.
  unsigned Multiprocessor = 0;
  /// First lane of the problem within its block (0 unless packed).
  unsigned LaneOffset = 0;
  /// Packed-launch id, sequential in submission order.
  uint64_t Group = 0;
  /// Cycle at which the problem's root cell resolves.
  uint64_t CompletionCycles = 0;
  /// Per-partition start cycles, recorded only when the planner was
  /// asked for them (trace emission).
  std::vector<uint64_t> StageStartCycles;
};

/// Batch-level accounting, valid after PipelinePlanner::finish().
struct PipelineStats {
  /// Busiest-multiprocessor finish plus the kernel launch: the batch's
  /// modelled wall clock.
  uint64_t MakespanCycles = 0;
  /// Cycles saved by overlap, summed over multiprocessors: serial
  /// (back-to-back) cycles minus pipelined finish, per multiprocessor.
  uint64_t OverlapCycles = 0;
  /// Cycles multiprocessors idle waiting for the busiest one, summed.
  uint64_t IdleCycles = 0;
  /// Launches after packing (== problems when packing is off).
  uint64_t Groups = 0;
  /// Per used multiprocessor: pipelined finish cycle (launch excluded).
  std::vector<uint64_t> MultiprocessorFinish;
  /// Per used multiprocessor: serial minus pipelined cycles.
  std::vector<uint64_t> MultiprocessorOverlap;
  /// Per used multiprocessor: busiest finish minus own finish.
  std::vector<uint64_t> MultiprocessorIdle;
};

/// Plans the systolic execution of one batch. Problems are fed in
/// submission order via add(); the planner packs compatible consecutive
/// small problems into one launch (when enabled), assigns each sealed
/// launch to the multiprocessor that finishes it earliest, and times its
/// partitions with the tandem recurrence
///
///   finish(g, p) = max(finish(g, p-1), finish(prev, p)) + cost(g, p)
///
/// where prev is the launch previously placed on the same
/// multiprocessor: stage p of launch g may start once g's own stage p-1
/// is done *and* the predecessor has released stage p. Back-to-back
/// execution is always a feasible schedule, so a launch's makespan never
/// exceeds the barrier dispatcher's load for the same assignment; every
/// stage costs at least the barrier's SyncCycles, so two multi-partition
/// launches sharing a multiprocessor strictly overlap.
///
/// add() and finish() return the indices of problems whose placement
/// became final (their launch was sealed), in submission order — the
/// hook serve uses to resolve futures before the batch drains. All
/// decisions are deterministic in submission order.
class PipelinePlanner {
public:
  PipelinePlanner(const CostModel &Model, bool PackSmall,
                  bool RecordStageStarts);

  /// Feeds the next problem (submission order). Returns the problems
  /// finalised by this step: when \p Profile does not join the open
  /// packed launch, that launch seals and its members' placements —
  /// completion cycle included — are final.
  std::vector<size_t> add(PipelineProfile Profile);

  /// Seals the open launch and computes batch stats. Returns the last
  /// problems to become final.
  std::vector<size_t> finish();

  size_t numProblems() const { return Placements.size(); }

  /// Valid once the problem has been finalised (returned by add() or
  /// finish()).
  const PipelinePlacement &placement(size_t Problem) const {
    return Placements[Problem];
  }

  /// Valid after finish().
  const PipelineStats &stats() const { return Stats; }

private:
  struct Multiprocessor {
    /// Per-stage finish cycles successors must wait on: the last
    /// launch's stages, plus carried-forward finishes of earlier
    /// launches that ran deeper than it.
    std::vector<uint64_t> LastFinish;
    /// Latest finish cycle over all launches placed here; monotone in
    /// placement order even when a short launch drains before its
    /// predecessor's deeper stages.
    uint64_t FinalFinish = 0;
    /// Sum of serial launch costs placed here (for overlap accounting).
    uint64_t SerialCycles = 0;
    bool Used = false;
  };

  bool joinsOpenGroup(const PipelineProfile &Profile) const;
  std::vector<size_t> sealOpenGroup();

  CostModel Model;
  bool PackSmall = false;
  bool RecordStageStarts = false;

  std::vector<PipelinePlacement> Placements;
  std::vector<Multiprocessor> Mps;
  PipelineStats Stats;
  bool Finished = false;

  // The open (not yet sealed) packed launch.
  std::vector<size_t> OpenMembers;
  std::vector<PipelineProfile> OpenProfiles;
  unsigned OpenDemand = 0;
  uint64_t NextGroup = 0;
};

/// Emits \p Timeline as overlapped per-partition slices on
/// simulated-device lane \p Block, starting each partition at the
/// pipeline-planned cycle in \p StageStarts rather than back-to-back
/// from zero. \p LaneOffset and \p Problem label the slices so packed
/// problems sharing a block stay distinguishable. No-op when tracing is
/// disabled.
void emitBlockTimeline(unsigned Block,
                       const std::vector<PartitionSample> &Timeline,
                       const std::vector<uint64_t> &StageStarts,
                       unsigned LaneOffset, uint64_t Problem);

} // namespace gpu
} // namespace parrec

#endif // PARREC_GPU_PIPELINE_H
