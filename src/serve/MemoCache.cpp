//===- MemoCache.cpp - Bounded result memoization cache ---------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "serve/MemoCache.h"

#include "obs/Metrics.h"

using namespace parrec;
using namespace parrec::serve;

uint64_t MemoCache::entryBytes(const Entry &E) {
  // Memoized payloads never carry a table or a timeline (the engine
  // refuses to memoize those requests), so the footprint is the struct
  // plus the schedule's coefficient vector.
  return sizeof(Slot) +
         E.Result.UsedSchedule.Coefficients.size() * sizeof(int64_t);
}

std::optional<MemoCache::Entry> MemoCache::lookup(const Key &K) {
  obs::MetricsRegistry &M = obs::MetricsRegistry::global();
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(K);
  if (It == Index.end()) {
    ++Counters.Misses;
    M.add("serve.memo.misses");
    return std::nullopt;
  }
  Lru.splice(Lru.begin(), Lru, It->second);
  ++Counters.Hits;
  M.add("serve.memo.hits");
  M.add("serve.memo.hit_bytes", entryBytes(It->second->second));
  return It->second->second;
}

void MemoCache::insert(const Key &K, Entry E) {
  obs::MetricsRegistry &M = obs::MetricsRegistry::global();
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Index.count(K))
    return; // A concurrent duplicate execution already inserted it.
  uint64_t Bytes = entryBytes(E);
  Lru.emplace_front(K, std::move(E));
  Index.emplace(K, Lru.begin());
  ++Counters.Insertions;
  Counters.Bytes += Bytes;
  M.add("serve.memo.inserted_bytes", Bytes);
  while (Lru.size() > Capacity) {
    Counters.Bytes -= entryBytes(Lru.back().second);
    Index.erase(Lru.back().first);
    Lru.pop_back();
    ++Counters.Evictions;
    M.add("serve.memo.evictions");
  }
}

MemoCache::Stats MemoCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

size_t MemoCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Lru.size();
}
