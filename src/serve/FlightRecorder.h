//===- FlightRecorder.h - Ring buffer of request lifecycle events -*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size lock-free ring of recent request-lifecycle events
/// (submit / coalesce / dispatch / complete, each with the request id,
/// virtual tick, status, device, batch and tenant), recorded by the
/// serving engine on every request and dumped as JSON on demand or
/// automatically on the first Deadline/Failed response — so a bad p99
/// tail is diagnosable after the fact without a tracer running.
///
/// Writers claim a slot with one fetch_add and publish it with a
/// release-ordered version stamp; readers re-check the stamp after
/// copying the fields and skip slots a concurrent writer is mid-update
/// on. Every slot field is an atomic, so a snapshot during a wrap race
/// yields a skipped (or, in the worst case, mixed-but-well-defined)
/// entry, never undefined behaviour — the recorder is always on and must
/// be TSan-clean under the engine's coalescer and device threads.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_SERVE_FLIGHTRECORDER_H
#define PARREC_SERVE_FLIGHTRECORDER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace parrec {
namespace serve {

/// Where in its lifecycle a request was when the event fired.
enum class FlightEventKind : uint8_t {
  Submit = 0,   ///< Admitted to (or rejected at) the queue.
  Coalesce = 1, ///< Absorbed into a batch by the coalescer.
  Dispatch = 2, ///< Handed to a device lane for execution.
  Complete = 3, ///< Terminal response published.
};

const char *flightEventKindName(FlightEventKind Kind);

/// One decoded ring entry, in recording order.
struct FlightEvent {
  uint64_t Seq = 0; ///< Global claim index (monotonic across wraps).
  FlightEventKind Kind = FlightEventKind::Submit;
  uint64_t Request = 0;
  uint64_t Tick = 0;
  uint8_t Status = 0;   ///< serve::Status of the request at this point.
  uint16_t Device = 0;  ///< Executing device lane (0 when not yet placed).
  uint32_t Tenant = 0;  ///< Interned tenant id (0 = unnamed tenant).
  uint64_t Batch = 0;   ///< Batch id (0 before coalescing).
};

class FlightRecorder {
public:
  /// \p Capacity is rounded up to a power of two, minimum 16.
  explicit FlightRecorder(size_t Capacity = 1024);

  FlightRecorder(const FlightRecorder &) = delete;
  FlightRecorder &operator=(const FlightRecorder &) = delete;

  size_t capacity() const { return Cap; }
  /// Total events ever recorded (recorded() - capacity() of them have
  /// been overwritten once recorded() exceeds capacity()).
  uint64_t recorded() const { return Head.load(std::memory_order_relaxed); }

  void record(FlightEventKind Kind, uint64_t Request, uint64_t Tick,
              uint8_t Status, uint16_t Device, uint32_t Tenant,
              uint64_t Batch);

  /// Decodes the currently live entries, oldest first. Entries a writer
  /// is mid-update on are skipped.
  std::vector<FlightEvent> events() const;

  /// Renders the ring as one JSON document:
  /// {"capacity":N,"recorded":N,"dropped":N,"events":[...]}, with
  /// \p StatusNames and \p TenantNames resolving the packed ids (either
  /// may be empty, in which case raw numbers are emitted).
  std::string json(const std::vector<std::string> &StatusNames,
                   const std::vector<std::string> &TenantNames) const;

private:
  struct Slot {
    /// 0 = never written; otherwise claim index + 1, release-published
    /// after the payload stores.
    std::atomic<uint64_t> Version{0};
    std::atomic<uint64_t> Request{0};
    std::atomic<uint64_t> Tick{0};
    std::atomic<uint64_t> Batch{0};
    /// Kind, status, device and tenant packed into one word.
    std::atomic<uint64_t> Packed{0};
  };

  static uint64_t pack(FlightEventKind Kind, uint8_t Status, uint16_t Device,
                       uint32_t Tenant);

  std::unique_ptr<Slot[]> Slots;
  size_t Cap = 0; ///< Power of two; slot index is claim & (Cap - 1).
  std::atomic<uint64_t> Head{0};
};

} // namespace serve
} // namespace parrec

#endif // PARREC_SERVE_FLIGHTRECORDER_H
