//===- Workload.cpp - Serving-engine replay workloads -----------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "serve/Workload.h"

#include "serve/Router.h"

#include "bio/Fasta.h"
#include "bio/HmmZoo.h"
#include "bio/SubstitutionMatrix.h"
#include "obs/Json.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>

using namespace parrec;
using namespace parrec::serve;

namespace {

/// The case-study recursions the replay tenants draw from; the same
/// shapes the benches and differential tests use.
const char *SmithWatermanSource =
    "int sw(matrix[protein] m, seq[protein] a, index[a] i,\n"
    "       seq[protein] b, index[b] j) =\n"
    "  if i == 0 then 0\n"
    "  else if j == 0 then 0\n"
    "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n"
    "       max (sw(i-1, j) - 4) max (sw(i, j-1) - 4)\n";

const char *DnaForwardSource =
    "prob forward(hmm h, state[h] s, seq[dna] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))\n";

const char *DnaViterbiSource =
    "prob viterbi(hmm h, state[h] s, seq[dna] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    max(t in s.transitionsto : t.prob * viterbi(t.start, i - 1))\n";

const char *sourceForKind(const std::string &Kind) {
  if (Kind == "smith_waterman")
    return SmithWatermanSource;
  if (Kind == "forward")
    return DnaForwardSource;
  if (Kind == "viterbi")
    return DnaViterbiSource;
  return nullptr;
}

/// The workload generator's only randomness: a 64-bit LCG, deterministic
/// in the tenant seed and independent of everything else in the process.
class Lcg {
public:
  explicit Lcg(uint64_t Seed)
      : State(Seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull) {}

  uint64_t next() {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return State >> 17;
  }

  uint64_t below(uint64_t N) { return N ? next() % N : 0; }

private:
  uint64_t State;
};

/// Geometric inter-arrival draw with mean \p Mean ticks (capped at 8x),
/// the discrete analogue of Poisson arrivals.
uint64_t arrivalGap(Lcg &Rng, uint64_t Mean) {
  if (Mean <= 1)
    return 1;
  uint64_t Gap = 1;
  while (Gap < Mean * 8 && Rng.below(Mean) != 0)
    ++Gap;
  return Gap;
}

bool specError(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

bool parseTenant(const obs::JsonValue &Doc, size_t Index, TenantSpec &Out,
                 std::string *Error) {
  std::string Where = "tenants[" + std::to_string(Index) + "]";
  if (!Doc.isObject())
    return specError(Error, Where + ": expected an object");
  Out.Name = Doc.stringOr("name", "tenant" + std::to_string(Index));
  Out.Kind = Doc.stringOr("kind", "");
  if (!sourceForKind(Out.Kind))
    return specError(Error, Where + ": unknown kind '" + Out.Kind +
                                "' (expected smith_waterman, forward or "
                                "viterbi)");
  Out.Requests = static_cast<uint64_t>(Doc.integerOr("requests", 8));
  if (Out.Requests == 0)
    return specError(Error, Where + ": requests must be at least 1");
  Out.MinLength = Doc.integerOr("min_length", 24);
  Out.MaxLength = Doc.integerOr("max_length", 48);
  if (Out.MinLength < 1 || Out.MaxLength < Out.MinLength)
    return specError(Error,
                     Where + ": need 1 <= min_length <= max_length");
  Out.MeanGapTicks =
      static_cast<uint64_t>(Doc.integerOr("mean_gap_ticks", 1));
  Out.DeadlineTicks =
      static_cast<uint64_t>(Doc.integerOr("deadline_ticks", 0));
  Out.Priority = static_cast<int>(Doc.integerOr("priority", 0));
  int64_t Weight = Doc.integerOr("weight", 1);
  if (Weight < 1)
    return specError(Error, Where + ": weight must be at least 1");
  Out.Weight = static_cast<uint64_t>(Weight);
  Out.Seed = static_cast<uint64_t>(Doc.integerOr("seed", Index + 1));
  return true;
}

} // namespace

std::optional<WorkloadSpec>
serve::parseWorkloadSpec(const obs::JsonValue &Doc, std::string *Error) {
  if (!Doc.isObject()) {
    specError(Error, "workload: expected a top-level object");
    return std::nullopt;
  }
  const obs::JsonValue *Tenants = Doc.member("tenants");
  if (!Tenants || !Tenants->isArray() || Tenants->array().empty()) {
    specError(Error, "workload: expected a non-empty 'tenants' array");
    return std::nullopt;
  }
  WorkloadSpec Spec;
  Spec.Tenants.reserve(Tenants->array().size());
  for (size_t I = 0; I != Tenants->array().size(); ++I) {
    TenantSpec Tenant;
    if (!parseTenant(Tenants->array()[I], I, Tenant, Error))
      return std::nullopt;
    Spec.Tenants.push_back(std::move(Tenant));
  }
  return Spec;
}

std::optional<WorkloadSpec> serve::loadWorkloadSpec(const std::string &Path,
                                                    std::string *Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    specError(Error, "cannot read workload file '" + Path + "'");
    return std::nullopt;
  }
  std::ostringstream Text;
  Text << In.rdbuf();
  std::string ParseError;
  std::optional<obs::JsonValue> Doc =
      obs::parseJson(Text.str(), &ParseError);
  if (!Doc) {
    specError(Error, "workload file '" + Path + "': " + ParseError);
    return std::nullopt;
  }
  return parseWorkloadSpec(*Doc, Error);
}

std::optional<Workload> Workload::build(const WorkloadSpec &Spec,
                                        DiagnosticEngine &Diags) {
  Workload W;
  std::map<std::string, const runtime::CompiledRecurrence *> Compiled;
  auto functionFor =
      [&](const std::string &Kind) -> const runtime::CompiledRecurrence * {
    auto It = Compiled.find(Kind);
    if (It != Compiled.end())
      return It->second;
    auto Fn = runtime::CompiledRecurrence::compile(sourceForKind(Kind),
                                                   Diags);
    if (!Fn)
      return nullptr;
    W.Functions.push_back(std::move(*Fn));
    return Compiled[Kind] = &W.Functions.back();
  };

  bio::Hmm *Genes = nullptr;
  for (const TenantSpec &Tenant : Spec.Tenants)
    if (Tenant.Kind == "forward" || Tenant.Kind == "viterbi") {
      W.Models.push_back(bio::makeGeneFinderModel());
      Genes = &W.Models.back();
      break;
    }
  const bio::SubstitutionMatrix &Blosum =
      bio::SubstitutionMatrix::blosum62();

  for (const TenantSpec &Tenant : Spec.Tenants) {
    const runtime::CompiledRecurrence *Fn = functionFor(Tenant.Kind);
    if (!Fn)
      return std::nullopt;
    Lcg Rng(Tenant.Seed);
    const bio::Sequence *Query = nullptr;
    if (Tenant.Kind == "smith_waterman") {
      W.Sequences.push_back(bio::randomSequence(
          bio::Alphabet::protein(), Tenant.MaxLength, Rng.next(),
          Tenant.Name + "-query"));
      Query = &W.Sequences.back();
    }
    uint64_t Tick = 0;
    for (uint64_t R = 0; R != Tenant.Requests; ++R) {
      Tick += arrivalGap(Rng, Tenant.MeanGapTicks);
      int64_t Length =
          Tenant.MinLength +
          static_cast<int64_t>(Rng.below(static_cast<uint64_t>(
              Tenant.MaxLength - Tenant.MinLength + 1)));
      ReplayEvent Ev;
      Ev.Fn = Fn;
      Ev.SubmitTick = Tick;
      Ev.DeadlineTick =
          Tenant.DeadlineTicks ? Tick + Tenant.DeadlineTicks : 0;
      Ev.Priority = Tenant.Priority;
      Ev.Tenant = Tenant.Name;
      std::string Name = Tenant.Name + "-" + std::to_string(R);
      if (Tenant.Kind == "smith_waterman") {
        W.Sequences.push_back(
            bio::randomSequence(bio::Alphabet::protein(), Length,
                                Rng.next(), std::move(Name)));
        Ev.Args = {codegen::ArgValue::ofMatrix(&Blosum),
                   codegen::ArgValue::ofSeq(Query), codegen::ArgValue(),
                   codegen::ArgValue::ofSeq(&W.Sequences.back()),
                   codegen::ArgValue()};
      } else {
        std::string Observed =
            Genes->sample(Rng.next(), static_cast<size_t>(Length));
        while (static_cast<int64_t>(Observed.size()) < Length)
          Observed += Genes->alphabet().charAt(static_cast<unsigned>(
              Rng.below(Genes->alphabet().size())));
        Observed.resize(static_cast<size_t>(Length));
        W.Sequences.emplace_back(std::move(Name), std::move(Observed));
        Ev.Args = {codegen::ArgValue::ofHmm(Genes), codegen::ArgValue(),
                   codegen::ArgValue::ofSeq(&W.Sequences.back()),
                   codegen::ArgValue()};
      }
      W.Events.push_back(std::move(Ev));
    }
  }

  std::stable_sort(W.Events.begin(), W.Events.end(),
                   [](const ReplayEvent &A, const ReplayEvent &B) {
                     return A.SubmitTick < B.SubmitTick;
                   });
  W.LastTick = W.Events.empty() ? 0 : W.Events.back().SubmitTick;
  return W;
}

namespace {

/// The submission/collection core shared by the Engine and Router
/// replay overloads; \p Host needs advanceTo, submit and shutdown.
template <typename Host>
ReplayReport replayCore(Host &E, const Workload &W,
                        uint64_t LingerTicks) {
  auto Start = std::chrono::steady_clock::now();
  std::vector<Future> Futures;
  Futures.reserve(W.events().size());
  for (const ReplayEvent &Ev : W.events()) {
    E.advanceTo(Ev.SubmitTick);
    Request Req;
    Req.Fn = Ev.Fn;
    Req.Args = Ev.Args;
    Req.DeadlineTick = Ev.DeadlineTick;
    Req.Priority = Ev.Priority;
    Req.Tenant = Ev.Tenant;
    Futures.push_back(E.submit(std::move(Req)));
  }
  // Push the clock past the last linger window, then finish everything
  // still admitted.
  E.advanceTo(W.lastTick() + LingerTicks + 1);
  E.shutdown(Engine::ShutdownMode::Drain);
  auto End = std::chrono::steady_clock::now();

  ReplayReport Report;
  Report.Total = Futures.size();
  // Percentiles come from a log-bucketed histogram instead of retaining
  // and sorting every sample: memory stays bounded over a soak of any
  // length, at the cost of Histogram::relativeError() (~9%) on the
  // reported quantiles (ServeTest cross-checks the bound against an
  // exact sort).
  obs::Histogram OkLatency;
  obs::Histogram OkCompletion;
  std::map<std::string, obs::Histogram> TenantLatency;
  for (size_t I = 0; I != Futures.size(); ++I) {
    const Response &Resp = Futures[I].wait();
    ++Report.ByStatus[std::string(statusName(Resp.St))];
    if (Resp.St == Status::Ok) {
      OkLatency.record(Resp.TotalSeconds);
      OkCompletion.record(static_cast<double>(Resp.CompletionCycle));
      const std::string &Tenant = W.events()[I].Tenant;
      TenantLatency[Tenant.empty() ? "none" : Tenant].record(
          Resp.TotalSeconds);
    }
  }
  Report.P50Seconds = OkLatency.percentile(0.50);
  Report.P95Seconds = OkLatency.percentile(0.95);
  Report.P99Seconds = OkLatency.percentile(0.99);
  for (const auto &[Tenant, Hist] : TenantLatency) {
    ReplayReport::TenantLatency TL;
    TL.Ok = Hist.Count;
    TL.P50Seconds = Hist.percentile(0.50);
    TL.P95Seconds = Hist.percentile(0.95);
    TL.P99Seconds = Hist.percentile(0.99);
    Report.ByTenant.emplace(Tenant, TL);
  }
  Report.CompletionCycleP50 =
      static_cast<uint64_t>(OkCompletion.percentile(0.50));
  Report.CompletionCycleP95 =
      static_cast<uint64_t>(OkCompletion.percentile(0.95));
  Report.CompletionCycleP99 =
      static_cast<uint64_t>(OkCompletion.percentile(0.99));
  Report.WallSeconds =
      std::chrono::duration<double>(End - Start).count();
  Report.Throughput =
      Report.WallSeconds > 0.0
          ? static_cast<double>(OkLatency.Count) / Report.WallSeconds
          : 0.0;
  return Report;
}

} // namespace

ReplayReport serve::replay(Engine &E, const Workload &W) {
  ReplayReport Report = replayCore(E, W, E.options().LingerTicks);
  Report.Stats = E.stats();
  Report.ModelledCycles = Report.Stats.maxDeviceCycles();
  Report.ModelledSeconds =
      E.options().Model.gpuSeconds(Report.ModelledCycles);
  return Report;
}

ReplayReport serve::replay(Router &R, const Workload &W) {
  ReplayReport Report =
      replayCore(R, W, R.options().Shard.LingerTicks);
  Router::Stats S = R.stats();
  Report.Stats = S.Total;
  Report.ModelledCycles = Report.Stats.maxDeviceCycles();
  Report.ModelledSeconds =
      R.options().Shard.Model.gpuSeconds(Report.ModelledCycles);
  Report.RouterShards = R.shards();
  Report.RouterSpilled = S.Spilled;
  Report.RouterRerouted = S.Rerouted;
  Report.RouterDrains = S.Drains;
  Report.RouterReadmits = S.Readmits;
  return Report;
}

std::string ReplayReport::json() const {
  obs::JsonWriter Json;
  Json.beginObject();
  Json.key("total").value(static_cast<uint64_t>(Total));
  Json.key("by_status").beginObject();
  for (const auto &[Name, Count] : ByStatus)
    Json.key(Name).value(Count);
  Json.endObject();
  Json.key("latency_seconds").beginObject();
  Json.key("p50").value(P50Seconds);
  Json.key("p95").value(P95Seconds);
  Json.key("p99").value(P99Seconds);
  Json.endObject();
  Json.key("tenants").beginObject();
  for (const auto &[Tenant, TL] : ByTenant) {
    Json.key(Tenant).beginObject();
    Json.key("ok").value(TL.Ok);
    Json.key("latency_seconds").beginObject();
    Json.key("p50").value(TL.P50Seconds);
    Json.key("p95").value(TL.P95Seconds);
    Json.key("p99").value(TL.P99Seconds);
    Json.endObject();
    Json.endObject();
  }
  Json.endObject();
  Json.key("wall_seconds").value(WallSeconds);
  Json.key("throughput_ok_per_second").value(Throughput);
  Json.key("modelled").beginObject();
  Json.key("busiest_device_cycles").value(ModelledCycles);
  Json.key("busiest_device_seconds").value(ModelledSeconds);
  Json.key("completion_cycles").beginObject();
  Json.key("p50").value(CompletionCycleP50);
  Json.key("p95").value(CompletionCycleP95);
  Json.key("p99").value(CompletionCycleP99);
  Json.endObject();
  Json.endObject();
  Json.key("engine").beginObject();
  Json.key("submitted").value(Stats.Submitted);
  Json.key("completed").value(Stats.Completed);
  Json.key("rejected").value(Stats.Rejected);
  Json.key("deadline_shed").value(Stats.DeadlineShed);
  Json.key("aborted").value(Stats.Aborted);
  Json.key("failed").value(Stats.Failed);
  Json.key("batches").value(Stats.Batches);
  Json.key("max_queue_depth").value(Stats.MaxQueueDepth);
  Json.key("memo_hits").value(Stats.MemoHits);
  Json.key("continuous_joins").value(Stats.ContinuousJoins);
  Json.key("devices").beginArray();
  for (size_t I = 0; I != Stats.DeviceBatches.size(); ++I) {
    Json.beginObject();
    Json.key("batches").value(Stats.DeviceBatches[I]);
    Json.key("requests").value(Stats.DeviceRequests[I]);
    Json.key("cycles").value(Stats.DeviceCycles[I]);
    Json.endObject();
  }
  Json.endArray();
  Json.endObject();
  if (RouterShards != 0) {
    Json.key("router").beginObject();
    Json.key("shards").value(static_cast<uint64_t>(RouterShards));
    Json.key("spilled").value(RouterSpilled);
    Json.key("rerouted").value(RouterRerouted);
    Json.key("drains").value(RouterDrains);
    Json.key("readmits").value(RouterReadmits);
    Json.endObject();
  }
  Json.endObject();
  return Json.take();
}
