//===- Router.h - Sharded front router over serving engines -------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A front router over N serve::Engine shards, each with its own
/// coalescer, fair queue and simulated devices. Requests hash to a shard
/// by (tenant, PlanKey) — the same key the coalescer batches on — so one
/// tenant's repeats of one shape land on one shard and keep coalescing,
/// while distinct tenants and shapes spread across shards. Routing is
/// load-aware: when Options::SpillQueueDepth is set and the sticky
/// shard's queue is deeper, the request spills to the shallowest live
/// shard (deterministic, lowest index on ties).
///
/// Shards can be drained one at a time for rolling restarts:
/// drainShard() takes a shard out of rotation (the router re-routes its
/// traffic to the remaining shards) and finishes everything it had
/// admitted; readmitShard() replaces it with a fresh engine synchronised
/// to the router's virtual clock. Because results are bit-identical
/// whichever engine runs a request, a rolling restart is invisible in
/// response payloads.
///
/// All shards share one MemoCache, so a repeat that re-routes or spills
/// still hits. The router's own clock (advanceTo) fans out to every
/// shard; per-shard clocks never diverge from it by more than a readmit
/// resync.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_SERVE_ROUTER_H
#define PARREC_SERVE_ROUTER_H

#include "serve/Engine.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace parrec {
namespace serve {

class Router {
public:
  struct Options {
    /// Engine options applied to every shard (devices, queue capacity,
    /// linger, tenant weights, continuous batching, pipeline, ...).
    Engine::Options Shard;
    /// Number of engine shards (clamped to >= 1).
    unsigned Shards = 1;
    /// Spill threshold: when non-zero and the sticky shard's queue is
    /// strictly deeper than this, the request goes to the live shard
    /// with the shallowest queue instead. 0 disables spilling.
    size_t SpillQueueDepth = 0;
    /// Shared memo-cache capacity in entries across all shards; 0 falls
    /// back to Shard.Memo / Shard.MemoCapacity (also shared when set).
    size_t MemoCapacity = 0;
  };

  struct Stats {
    /// Sum over shards (and over drained generations). The Device*
    /// vectors concatenate per-shard device totals in shard order.
    Engine::Stats Total;
    /// Per-shard aggregates, drained generations included.
    std::vector<Engine::Stats> PerShard;
    uint64_t Routed = 0;   ///< Requests routed to their sticky shard.
    uint64_t Spilled = 0;  ///< Requests re-routed by the spill rule.
    uint64_t Rerouted = 0; ///< Requests routed around a draining shard.
    uint64_t Drains = 0;
    uint64_t Readmits = 0;
  };

  explicit Router(Options Opts);
  /// Drains every live shard.
  ~Router();

  Router(const Router &) = delete;
  Router &operator=(const Router &) = delete;

  unsigned shards() const { return NumShards; }
  const Options &options() const { return Opts; }
  bool shardLive(unsigned Shard) const;

  /// Routes and submits one request; the returned Future resolves when
  /// the owning shard completes it. With every shard draining, requests
  /// resolve to Status::QueueFull (the shard refuses admission).
  Future submit(Request Req,
                std::function<void(const Response &)> Callback = {});

  /// The router's virtual clock; fans out to every shard.
  void advanceTo(uint64_t Tick);
  uint64_t now() const;

  /// Takes shard \p Shard out of rotation and drains it (blocks until
  /// its admitted work completes). False when already draining or out of
  /// range. New traffic re-routes to the remaining shards meanwhile.
  bool drainShard(unsigned Shard);
  /// Replaces a drained shard with a fresh engine synchronised to the
  /// router clock and puts it back in rotation. False when the shard is
  /// live or out of range.
  bool readmitShard(unsigned Shard);

  /// Shuts every shard down (Drain finishes admitted work, Abort
  /// resolves queued requests as Aborted).
  void shutdown(Engine::ShutdownMode Mode);

  Stats stats() const;
  /// Sum of live shards' queue depths.
  size_t queueDepth() const;
  const std::shared_ptr<MemoCache> &memoCache() const { return Memo; }
  /// Direct shard access for tests and diagnostics; \p Shard must be in
  /// range. The engine may be mid-drain — treat as read-only.
  Engine &shard(unsigned Shard) const { return *Shards_[Shard].Eng; }

private:
  struct ShardSlot {
    std::shared_ptr<Engine> Eng;
    bool Live = true;
  };

  /// Sticky shard for (tenant, plan key hash), ignoring liveness.
  unsigned homeShard(const std::string &Tenant, uint64_t KeyHash) const;
  /// Folds \p From into \p Into (scalars summed, device vectors summed
  /// element-wise).
  static void accumulate(Engine::Stats &Into, const Engine::Stats &From);

  Options Opts;
  unsigned NumShards = 1;
  std::shared_ptr<MemoCache> Memo;

  mutable std::mutex Mutex;
  std::vector<ShardSlot> Shards_;           // Guarded by Mutex.
  std::vector<Engine::Stats> Retired;       // Guarded by Mutex.
  uint64_t LastTick = 0;                    // Guarded by Mutex.
  uint64_t RoutedCount = 0;                 // Guarded by Mutex.
  uint64_t SpilledCount = 0;                // Guarded by Mutex.
  uint64_t ReroutedCount = 0;               // Guarded by Mutex.
  uint64_t DrainCount = 0;                  // Guarded by Mutex.
  uint64_t ReadmitCount = 0;                // Guarded by Mutex.
};

} // namespace serve
} // namespace parrec

#endif // PARREC_SERVE_ROUTER_H
