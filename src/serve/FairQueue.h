//===- FairQueue.h - Per-tenant weighted fair queueing ------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine's submission queue: per-(priority, tenant) FIFO subqueues
/// scheduled by strict priority across classes and deficit round robin
/// (quantum = the tenant's weight, unit cost per request) among the
/// tenants of a class. Under backlog, tenants of one priority class are
/// served in proportion to their weights; one chatty tenant can delay
/// the others by at most the in-flight burst, never starve them.
///
/// Invariants the serving layer relies on:
///  - FIFO within one (tenant, priority) subqueue — a tenant's own
///    requests never reorder.
///  - Strict priority across classes: no request dispatches while a
///    higher-priority request is queued.
///  - Deadline sheds and batch-absorbed riders consume no deficit; only
///    the request a pop() returns is charged, so shedding a backlogged
///    tenant's expired head cannot eat its goodput share.
///  - All cross-subqueue extraction (absorb, drain) returns items in
///    global submission (Seq) order.
///
/// The container is not synchronised; the engine guards it with its
/// queue mutex, exactly as it guarded the FIFO this replaces. It is a
/// template so the engine's private Pending type can live in it without
/// widening that type's visibility; Traits supplies field access.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_SERVE_FAIRQUEUE_H
#define PARREC_SERVE_FAIRQUEUE_H

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace parrec {
namespace serve {

/// Field access for FairQueue items. Specialise or shadow for the
/// engine's Pending; the defaults fit any struct with these members.
template <typename T> struct FairQueueTraits {
  static const std::string &tenant(const T &Item) { return Item.Tenant; }
  static int priority(const T &Item) { return Item.Priority; }
  static uint64_t seq(const T &Item) { return Item.Seq; }
  /// Virtual-clock deadline; 0 = none.
  static uint64_t deadline(const T &Item) { return Item.Deadline; }
};

template <typename T, typename Traits = FairQueueTraits<T>>
class FairQueue {
public:
  /// Sets a tenant's weight (clamped to >= 1). Weights may be set before
  /// any push; changing a weight mid-backlog applies from the tenant's
  /// next scheduling visit.
  void setWeight(const std::string &Tenant, uint64_t Weight) {
    Weights[Tenant] = std::max<uint64_t>(1, Weight);
  }

  uint64_t weight(const std::string &Tenant) const {
    auto It = Weights.find(Tenant);
    return It == Weights.end() ? 1 : It->second;
  }

  size_t size() const { return Total; }
  bool empty() const { return Total == 0; }

  /// Queued requests for one tenant, across all priority classes.
  size_t tenantDepth(const std::string &Tenant) const {
    auto It = TenantDepths.find(Tenant);
    return It == TenantDepths.end() ? 0 : It->second;
  }

  void push(T Item) {
    // Copy, not reference: the item is moved into its subqueue below.
    const std::string Tenant = Traits::tenant(Item);
    int Priority = Traits::priority(Item);
    ClassState &Class = Classes[Priority];
    Class.Tenants[Tenant].push_back(std::move(Item));
    ++TenantDepths[Tenant];
    ++Total;
  }

  /// Pops the next request per strict-priority + DRR order. Expired
  /// items (deadline != 0 and Now strictly past it) encountered on the
  /// way are moved to \p Shed without consuming the owning tenant's
  /// deficit. Returns nullopt when the queue is empty (possibly after
  /// shedding).
  std::optional<T> pop(uint64_t Now, std::vector<T> *Shed) {
    while (Total != 0) {
      // Highest non-empty priority class; Classes is keyed descending.
      auto ClassIt = Classes.begin();
      while (ClassIt != Classes.end() && classSize(ClassIt->second) == 0)
        ClassIt = Classes.erase(ClassIt);
      if (ClassIt == Classes.end())
        return std::nullopt; // Total said otherwise; defensive.
      ClassState &Class = ClassIt->second;

      // A strictly-higher class emptying resets no DRR state here: each
      // class keeps its own cursor and burst, so preemption by a burst
      // of high-priority work resumes the lower class where it left off.
      if (Class.BurstLeft == 0 || !hasItems(Class, Class.Cursor)) {
        advanceCursor(Class);
        Class.BurstLeft = weight(Class.Cursor);
      }
      std::deque<T> &Q = Class.Tenants[Class.Cursor];
      // Shed expired heads without charging the deficit: a shed frees
      // the device for nobody, so it must not count as service.
      while (!Q.empty() && expired(Q.front(), Now)) {
        if (Shed)
          Shed->push_back(std::move(Q.front()));
        removeFront(Class, Q);
      }
      if (Q.empty()) {
        Class.Tenants.erase(Class.Cursor);
        Class.BurstLeft = 0;
        continue;
      }
      T Item = std::move(Q.front());
      removeFront(Class, Q);
      --Class.BurstLeft;
      if (Q.empty())
        Class.Tenants.erase(Traits::tenant(Item));
      return Item;
    }
    return std::nullopt;
  }

  /// Extracts every item satisfying \p Match, in global submission (Seq)
  /// order, until \p Out has grown by \p MaxTake items; expired matches
  /// go to \p Shed (not counted against MaxTake). Neither path consumes
  /// deficit — absorbed requests ride an already-charged batch.
  template <typename Pred>
  void absorb(Pred Match, size_t MaxTake, uint64_t Now, std::vector<T> &Out,
              std::vector<T> &Shed) {
    std::vector<T> Matched = extract(Match);
    size_t Taken = 0;
    for (T &Item : Matched) {
      if (expired(Item, Now)) {
        Shed.push_back(std::move(Item));
      } else if (Taken < MaxTake) {
        Out.push_back(std::move(Item));
        ++Taken;
      } else {
        push(std::move(Item)); // Batch full: back where it came from.
      }
    }
  }

  /// Removes and returns everything, in global submission order.
  std::vector<T> drain() {
    return extract([](const T &) { return true; });
  }

private:
  struct ClassState {
    /// Tenant name -> FIFO. std::map: deterministic round order.
    std::map<std::string, std::deque<T>> Tenants;
    std::string Cursor;   ///< Tenant currently being served.
    uint64_t BurstLeft = 0; ///< Pops left in the cursor's DRR quantum.
  };

  static bool expired(const T &Item, uint64_t Now) {
    return Traits::deadline(Item) != 0 && Now > Traits::deadline(Item);
  }

  static size_t classSize(const ClassState &Class) {
    size_t N = 0;
    for (const auto &[Tenant, Q] : Class.Tenants)
      N += Q.size();
    return N;
  }

  bool hasItems(ClassState &Class, const std::string &Tenant) const {
    auto It = Class.Tenants.find(Tenant);
    return It != Class.Tenants.end() && !It->second.empty();
  }

  /// Moves the cursor to the next tenant in name order, wrapping — the
  /// deterministic analogue of an active-queue ring.
  void advanceCursor(ClassState &Class) {
    auto It = Class.Tenants.upper_bound(Class.Cursor);
    if (It == Class.Tenants.end())
      It = Class.Tenants.begin();
    Class.Cursor = It->first;
  }

  void removeFront(ClassState &Class, std::deque<T> &Q) {
    --TenantDepths[Traits::tenant(Q.front())];
    (void)Class;
    Q.pop_front();
    --Total;
  }

  template <typename Pred> std::vector<T> extract(Pred Match) {
    std::vector<T> Matched;
    for (auto &[Priority, Class] : Classes) {
      for (auto It = Class.Tenants.begin();
           It != Class.Tenants.end();) {
        std::deque<T> &Q = It->second;
        for (auto QIt = Q.begin(); QIt != Q.end();) {
          if (Match(static_cast<const T &>(*QIt))) {
            --TenantDepths[Traits::tenant(*QIt)];
            --Total;
            Matched.push_back(std::move(*QIt));
            QIt = Q.erase(QIt);
          } else {
            ++QIt;
          }
        }
        if (Q.empty())
          It = Class.Tenants.erase(It);
        else
          ++It;
      }
    }
    std::sort(Matched.begin(), Matched.end(),
              [](const T &A, const T &B) {
                return Traits::seq(A) < Traits::seq(B);
              });
    return Matched;
  }

  /// Priority classes, highest first.
  std::map<int, ClassState, std::greater<int>> Classes;
  std::map<std::string, uint64_t> Weights;
  std::map<std::string, size_t> TenantDepths;
  size_t Total = 0;
};

} // namespace serve
} // namespace parrec

#endif // PARREC_SERVE_FAIRQUEUE_H
