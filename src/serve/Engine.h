//===- Engine.h - Multi-tenant serving engine ---------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An always-on serving layer in front of the exec pipeline, shaped like
/// an inference server: admission through a bounded submission queue
/// (QueueFull backpressure instead of unbounded growth), per-tenant
/// weighted fair queueing (strict priority classes, deficit round robin
/// within a class — see FairQueue.h), a coalescer thread that groups
/// compatible requests — same recursion, same ExecutablePlan key — into
/// batches closed on a size-or-max-linger trigger, and a dispatcher that
/// places closed batches on the least-loaded of N simulated gpu::Device
/// instances (by accumulated estimated modelled cycles, lowest index on
/// ties — deterministic in the batch sequence), each with its own slice
/// of the host worker budget. One plan (and one compiled bytecode
/// program, via the function's PlanCache) serves a whole batch; one
/// modelled kernel launch covers the batch instead of one per request.
///
/// Two serving-layer caches/short-circuits ride on top:
///  - Options::ContinuousBatch admits a request whose PlanKey exactly
///    matches a batch still waiting in a device lane into that batch
///    (respecting MaxBatch) instead of opening a new linger window; a
///    batch a device has dequeued is never reopened.
///  - Options::MemoCapacity / Options::Memo memoize finished results
///    keyed on (function, PlanKey, input digest, thread override):
///    identical requests skip execution and resolve immediately with a
///    bit-identical payload (Response::Memoized). Requests that keep
///    tables or timelines are never memoized.
///
/// Time is virtual: deadlines and the coalescer's linger window are
/// measured on a caller-advanced tick clock (Engine::advanceTo), so
/// replay and tests are independent of wall time. Expired requests are
/// shed at dequeue with Status::Deadline rather than wasting device
/// time. shutdown(Drain) finishes everything queued; shutdown(Abort)
/// resolves queued work as Status::Aborted.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_SERVE_ENGINE_H
#define PARREC_SERVE_ENGINE_H

#include "exec/Plan.h"
#include "gpu/Device.h"
#include "serve/FairQueue.h"
#include "serve/FlightRecorder.h"
#include "serve/MemoCache.h"
#include "serve/Serve.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace parrec {
namespace obs {
class Span;
} // namespace obs

namespace serve {

/// The serving engine. Thread-safe: any thread may submit; completion
/// runs on the engine's device threads.
class Engine {
public:
  struct Options {
    /// Cost model shared by every simulated device.
    gpu::CostModel Model;
    /// Simulated gpu::Device instances; batches go to the least-loaded.
    unsigned Devices = 1;
    /// Submission-queue bound; submissions beyond it resolve to
    /// Status::QueueFull immediately.
    size_t QueueCapacity = 256;
    /// Coalescer closes a batch at this many requests.
    size_t MaxBatch = 16;
    /// Virtual ticks a batch stays open waiting for compatible arrivals
    /// after its first request; 0 closes as soon as the queue holds no
    /// compatible request.
    uint64_t LingerTicks = 0;
    /// When false every request dispatches as its own batch (the
    /// ablation baseline).
    bool Coalesce = true;
    /// Fair-queue weights per tenant name (missing tenants weigh 1,
    /// values clamp to >= 1): under backlog, tenants of one priority
    /// class are served proportionally to their weights.
    std::map<std::string, uint64_t> TenantWeights;
    /// Admit a late-arriving request with an exactly-matching PlanKey
    /// into a compatible batch still queued in a device lane instead of
    /// opening a new batch and linger window. Never exceeds MaxBatch,
    /// never touches a batch the device has already dequeued. Changes
    /// when work dispatches, never what it computes.
    bool ContinuousBatch = false;
    /// Result-memoization capacity in entries; 0 disables memoization
    /// (unless Memo is set). See MemoCache.h for the key derivation.
    size_t MemoCapacity = 0;
    /// Shared memo cache; overrides MemoCapacity. A Router passes one
    /// cache to all shards so re-routed repeats still hit.
    std::shared_ptr<MemoCache> Memo;
    /// Host worker threads per device for the problems of one batch;
    /// 0 divides exec::hostWorkerBudget() across the devices.
    unsigned BatchWorkersPerDevice = 0;
    /// Host worker threads per problem scan; 0 shares the per-device
    /// budget left after batch striping.
    unsigned ScanWorkersPerDevice = 0;
    /// Dispatch each batch systolically (gpu::PipelinePlanner):
    /// consecutive problems' partitions overlap on a multiprocessor and
    /// every future resolves the moment its problem's launch seals —
    /// before the batch drains. Response::CompletionCycle records the
    /// modelled resolution point. Results are bit-identical to the
    /// barrier path; only modelled device cycles change.
    bool Pipeline = false;
    /// With Pipeline, pack consecutive small problems of a batch into
    /// one simulated launch (per-problem lane offsets). No effect
    /// without Pipeline.
    bool PackSmall = false;
    /// Start with the coalescer paused (deterministic tests: fill the
    /// queue, then resume()).
    bool StartPaused = false;
    /// Flight-recorder ring capacity (rounded up to a power of two).
    size_t FlightRecorderSlots = 1024;
    /// When non-empty, the flight recorder is dumped to this path on the
    /// first Deadline or Failed response (once per engine). Defaults
    /// from the ParRec_FLIGHT_DUMP environment variable when empty.
    std::string FlightDumpPath;
  };

  enum class ShutdownMode {
    /// Finish everything already admitted, then stop.
    Drain,
    /// Resolve all queued (not yet executing) requests as Aborted.
    Abort,
  };

  /// Aggregate counters, independent of the obs registry so concurrent
  /// engines and tests see only their own traffic.
  struct Stats {
    uint64_t Submitted = 0;
    uint64_t Completed = 0;
    uint64_t Rejected = 0;
    uint64_t DeadlineShed = 0;
    uint64_t Aborted = 0;
    uint64_t Failed = 0;
    uint64_t Batches = 0;
    uint64_t MaxQueueDepth = 0;
    /// Ok responses served from the memo cache, without execution.
    uint64_t MemoHits = 0;
    /// Requests admitted into an already-queued batch (continuous
    /// batching) instead of opening a new one.
    uint64_t ContinuousJoins = 0;
    /// Per-device totals; devices run concurrently, so the modelled
    /// makespan of the whole engine is the max entry of DeviceCycles.
    std::vector<uint64_t> DeviceBatches;
    std::vector<uint64_t> DeviceRequests;
    std::vector<uint64_t> DeviceCycles;

    uint64_t maxDeviceCycles() const {
      uint64_t Max = 0;
      for (uint64_t C : DeviceCycles)
        Max = Max > C ? Max : C;
      return Max;
    }
  };

  explicit Engine(Options Opts);
  /// Drains outstanding work (shutdown(Drain)) if still running.
  ~Engine();

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  const Options &options() const { return Opts; }

  /// Admits one request. Returns a Future that resolves when the
  /// request completes (or immediately, for QueueFull / Failed
  /// rejections and memo hits). \p Callback, when set, runs on the
  /// completing thread right after the future becomes ready.
  Future submit(Request Req,
                std::function<void(const Response &)> Callback = {});

  /// The virtual clock (monotonic ticks; starts at 0).
  uint64_t now() const { return Clock.load(std::memory_order_acquire); }

  /// Advances the virtual clock to max(now(), Tick) and wakes the
  /// coalescer so linger windows and deadlines are re-evaluated.
  void advanceTo(uint64_t Tick);

  /// Pauses/resumes the coalescer (submissions stay open).
  void pause();
  void resume();

  /// Stops the engine and joins its threads. Idempotent; Drain finishes
  /// admitted work, Abort resolves queued requests as Aborted (a batch
  /// already executing on a device always completes).
  void shutdown(ShutdownMode Mode);

  Stats stats() const;
  size_t queueDepth() const;
  /// The shared or engine-local memo cache; null when memoization is
  /// off.
  const std::shared_ptr<MemoCache> &memoCache() const { return Memo; }

  /// The flight recorder's current contents as one JSON document
  /// (capacity, total recorded, dropped count, live events oldest
  /// first). Always available — the recorder is always on.
  std::string dumpFlightRecorder() const;
  /// Writes dumpFlightRecorder() to \p Path; false on I/O failure.
  bool dumpFlightRecorder(const std::string &Path) const;

private:
  struct Batch;
  struct DeviceLane;
  using Wall = std::chrono::steady_clock;

  /// A request admitted to the submission queue, with everything the
  /// coalescer needs precomputed on the submitting thread: the domain
  /// box and the plan key whose equality defines batch compatibility.
  struct Pending {
    Request Req;
    std::shared_ptr<detail::FutureState> State;
    exec::PlanKey Key;
    solver::DomainBox Box;
    uint64_t SubmitTick = 0;
    uint64_t Seq = 0;
    uint32_t TenantId = 0; ///< Interned tenant, for flight records.
    /// True when this request is memo-eligible (memoization on, no kept
    /// table, no timeline): its result is inserted under MemoKey.
    bool Memoize = false;
    MemoCache::Key MemoKey;
    Wall::time_point SubmitWall;
  };

  /// FairQueue field access for Pending.
  struct PendingTraits {
    static const std::string &tenant(const Pending &P) {
      return P.Req.Tenant;
    }
    static int priority(const Pending &P) { return P.Req.Priority; }
    static uint64_t seq(const Pending &P) { return P.Seq; }
    static uint64_t deadline(const Pending &P) {
      return P.Req.DeadlineTick;
    }
  };

  void complete(Pending &P, Status St, std::string Error = {});
  /// Interns \p Tenant into a bounded id table for flight-recorder
  /// entries (id 0 = unnamed; over-cardinality names collapse to one
  /// "other" id).
  uint32_t tenantId(const std::string &Tenant);
  /// Dumps the flight recorder to Opts.FlightDumpPath once, on the first
  /// Deadline/Failed response.
  void maybeAutoDump(Status St);
  void coalescerMain();
  void deviceMain(unsigned DeviceIndex);
  /// Continuous batching: tries to admit \p P into a compatible batch
  /// still waiting in a device lane. Coalescer thread; takes lane locks,
  /// never the queue lock.
  bool tryContinuousJoin(Pending &P);
  /// Least-loaded device choice: the lane with the smallest accumulated
  /// estimated modelled cycles (cells x members per batch), lowest index
  /// on ties. Coalescer thread only, so placement is deterministic in
  /// the batch sequence.
  unsigned pickLane(const Batch &B);
  /// Resolves a memo hit: full Ok bookkeeping, no queue, no device.
  void completeMemoHit(Pending &P, MemoCache::Entry Hit);
  /// Copies \p R (table/timeline stripped) into the memo cache under
  /// P.MemoKey, when P is memo-eligible.
  void maybeMemoize(const Pending &P, const exec::RunResult &R,
                    uint64_t CompletionCycle);
  void executeBatch(DeviceLane &Lane, Batch &B);
  /// The Options::Pipeline dispatch path: systolic overlap plus early,
  /// in-submission-order future resolution.
  void executeBatchPipelined(DeviceLane &Lane, Batch &B,
                             std::vector<Pending> &Members, obs::Span &Span,
                             std::chrono::steady_clock::time_point ExecStart,
                             const exec::SimulatedGpuBackend &Backend,
                             unsigned BatchWorkers, unsigned ScanWorkers);

  Options Opts;
  std::atomic<uint64_t> Clock{0};

  mutable std::mutex QueueMutex;
  std::condition_variable QueueCv; // Coalescer waits here.
  FairQueue<Pending, PendingTraits> Queue; // Guarded by QueueMutex.
  bool Paused = false;             // Guarded by QueueMutex.
  bool Stopping = false;           // Guarded by QueueMutex.
  bool Draining = false;           // Guarded by QueueMutex.
  uint64_t NextRequestSeq = 0;     // Guarded by QueueMutex.
  uint64_t NextBatchId = 0;        // Coalescer thread only.
  std::vector<uint64_t> LaneAssignedCost; // Coalescer thread only.

  std::vector<std::unique_ptr<DeviceLane>> Lanes;
  bool CoalescerDone = false; // Guarded by QueueMutex.

  std::shared_ptr<MemoCache> Memo; // Null when memoization is off.

  mutable std::mutex StatsMutex;
  Stats Counters; // Guarded by StatsMutex.
  std::atomic<uint64_t> CompletionSeq{0};
  std::atomic<uint64_t> NextRequestId{1};

  FlightRecorder Flight;
  std::atomic<bool> FlightDumped{false};
  mutable std::mutex TenantMutex;
  std::vector<std::string> TenantNames;          // Guarded by TenantMutex.
  std::map<std::string, uint32_t> TenantIdTable; // Guarded by TenantMutex.

  std::thread Coalescer;
  std::vector<std::thread> DeviceThreads;
  bool Joined = false; // Guarded by ShutdownMutex.
  std::mutex ShutdownMutex;
};

} // namespace serve
} // namespace parrec

#endif // PARREC_SERVE_ENGINE_H
