//===- Workload.h - Serving-engine replay workloads ---------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replayable multi-tenant workloads for the serving engine: a JSON spec
/// (tenants with a problem kind, request count, size range, arrival
/// rate, deadline and priority) is materialised into compiled
/// recursions, sequences and models plus a tick-ordered event list, and
/// replayed against an Engine on its virtual clock. Everything is
/// deterministic in the per-tenant seeds — arrival gaps come from a
/// seeded LCG-driven geometric draw (the discrete Poisson-ish analogue),
/// never from wall time — so a replay admits the same batches every run.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_SERVE_WORKLOAD_H
#define PARREC_SERVE_WORKLOAD_H

#include "bio/Hmm.h"
#include "bio/Sequence.h"
#include "runtime/CompiledRecurrence.h"
#include "serve/Engine.h"

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace parrec {
namespace obs {
class JsonValue;
} // namespace obs

namespace serve {

/// One tenant of a replay workload: a stream of same-kind problems.
struct TenantSpec {
  std::string Name;
  /// One of "smith_waterman", "forward", "viterbi".
  std::string Kind;
  /// Number of requests this tenant submits.
  uint64_t Requests = 8;
  /// Subject/observation lengths are drawn uniformly from this range.
  int64_t MinLength = 24;
  int64_t MaxLength = 48;
  /// Mean virtual ticks between consecutive arrivals (geometric draw).
  uint64_t MeanGapTicks = 1;
  /// Per-request deadline, relative to its submit tick; 0 = none.
  uint64_t DeadlineTicks = 0;
  int Priority = 0;
  /// Fair-queue weight within this tenant's priority class (>= 1):
  /// under backlog tenants are served proportionally to their weights.
  uint64_t Weight = 1;
  /// Seed for this tenant's sequence content and arrival gaps.
  uint64_t Seed = 1;
};

/// A parsed workload file: {"tenants": [{...}, ...]}.
struct WorkloadSpec {
  std::vector<TenantSpec> Tenants;

  /// The per-tenant weight map for Engine::Options::TenantWeights.
  std::map<std::string, uint64_t> tenantWeights() const {
    std::map<std::string, uint64_t> W;
    for (const TenantSpec &T : Tenants)
      W[T.Name] = T.Weight;
    return W;
  }
};

/// Parses a workload document. On failure returns nullopt and stores a
/// one-line message in \p Error (when non-null).
std::optional<WorkloadSpec> parseWorkloadSpec(const obs::JsonValue &Doc,
                                              std::string *Error);

/// Reads and parses \p Path as a workload file.
std::optional<WorkloadSpec> loadWorkloadSpec(const std::string &Path,
                                             std::string *Error);

/// One scheduled submission of a materialised workload.
struct ReplayEvent {
  const runtime::CompiledRecurrence *Fn = nullptr;
  std::vector<codegen::ArgValue> Args;
  uint64_t SubmitTick = 0;
  uint64_t DeadlineTick = 0; // Absolute; 0 = none.
  int Priority = 0;
  std::string Tenant;
};

/// A materialised workload. Owns the compiled recursions, sequences and
/// models its events point into; containers are chosen so moving the
/// Workload never relocates an element an event refers to.
class Workload {
public:
  /// Compiles and generates everything a spec needs. Deterministic in
  /// the spec. Returns nullopt after reporting into \p Diags.
  static std::optional<Workload> build(const WorkloadSpec &Spec,
                                       DiagnosticEngine &Diags);

  const std::vector<ReplayEvent> &events() const { return Events; }
  /// Submit tick of the last event (0 for an empty workload).
  uint64_t lastTick() const { return LastTick; }

private:
  Workload() = default;

  std::deque<runtime::CompiledRecurrence> Functions;
  std::deque<bio::Sequence> Sequences;
  std::deque<bio::Hmm> Models;
  std::vector<ReplayEvent> Events; // Sorted by SubmitTick.
  uint64_t LastTick = 0;
};

/// What a replay run observed.
struct ReplayReport {
  /// Per-tenant Ok-latency summary (histogram-backed percentiles, same
  /// error bound as the global ones).
  struct TenantLatency {
    uint64_t Ok = 0;
    double P50Seconds = 0.0;
    double P95Seconds = 0.0;
    double P99Seconds = 0.0;
  };

  uint64_t Total = 0;
  /// statusName() -> count, over every submitted request.
  std::map<std::string, uint64_t> ByStatus;
  /// End-to-end wall latency percentiles over Ok responses, seconds.
  double P50Seconds = 0.0;
  double P95Seconds = 0.0;
  double P99Seconds = 0.0;
  /// Keyed by tenant name (empty label -> "none").
  std::map<std::string, TenantLatency> ByTenant;
  /// Wall time of the whole replay (submission through drain).
  double WallSeconds = 0.0;
  /// Ok responses per wall second.
  double Throughput = 0.0;
  /// Modelled device time: the busiest device's accumulated makespan.
  uint64_t ModelledCycles = 0;
  double ModelledSeconds = 0.0;
  /// Per-problem modelled completion-cycle percentiles over Ok
  /// responses (Response::CompletionCycle). Under a pipelined engine
  /// the spread below a batch's makespan is the early-publication win.
  uint64_t CompletionCycleP50 = 0;
  uint64_t CompletionCycleP95 = 0;
  uint64_t CompletionCycleP99 = 0;
  Engine::Stats Stats;
  /// Router-level counters; present (RouterShards != 0) only for the
  /// replay(Router&, ...) overload.
  unsigned RouterShards = 0;
  uint64_t RouterSpilled = 0;
  uint64_t RouterRerouted = 0;
  uint64_t RouterDrains = 0;
  uint64_t RouterReadmits = 0;

  uint64_t okCount() const {
    auto It = ByStatus.find("ok");
    return It == ByStatus.end() ? 0 : It->second;
  }

  /// Renders the report as a JSON document (for --stats-out).
  std::string json() const;
};

class Router;

/// Replays \p W against \p E: advances the virtual clock to each event's
/// tick, submits, then drains the engine and aggregates the responses.
/// The engine is shut down (Drain) when this returns.
ReplayReport replay(Engine &E, const Workload &W);

/// Replays \p W through a front router: identical submission schedule,
/// shard-aggregated stats, plus the router counters in the report.
/// Every shard is shut down (Drain) when this returns.
ReplayReport replay(Router &R, const Workload &W);

} // namespace serve
} // namespace parrec

#endif // PARREC_SERVE_WORKLOAD_H
