//===- MemoCache.h - Bounded result memoization cache -------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded, internally synchronised LRU cache from (function identity,
/// exec::PlanKey, input digest, thread override) to finished RunResults
/// — the serving-layer analogue of PlanCache: PlanCache skips planning
/// for a repeated shape, MemoCache skips *execution* for a repeated
/// request. The key covers everything that can reach the result bits:
/// the plan key carries the domain box and every plan-relevant option,
/// the 128-bit exec::InputDigest covers the bound argument contents, and
/// the explicit Threads override covers the one run option that changes
/// modelled metrics without changing the plan. Requests that keep their
/// table or ask for a timeline are never memoized (their payloads carry
/// run-scoped objects), so a hit's payload is bit-identical to the
/// execution it replaces.
///
/// Shared by design: a Router hands one MemoCache to all its engine
/// shards, so a spilled or re-routed repeat still hits.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_SERVE_MEMOCACHE_H
#define PARREC_SERVE_MEMOCACHE_H

#include "exec/ExecutionBackend.h"
#include "exec/InputDigest.h"
#include "exec/Plan.h"

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace parrec {
namespace serve {

class MemoCache {
public:
  struct Key {
    /// The compiled function the request targets. Pointer identity: the
    /// engine already requires the function to outlive its requests, and
    /// batches coalesce on the same pointer.
    uintptr_t Fn = 0;
    exec::PlanKey Plan;
    exec::InputDigest Digest;
    /// RunOptions::Threads: not plan-relevant, but it changes the
    /// modelled block width and therefore Cycles/Metrics.
    unsigned Threads = 0;

    bool operator==(const Key &O) const {
      return Fn == O.Fn && Plan == O.Plan && Digest == O.Digest &&
             Threads == O.Threads;
    }
  };

  struct KeyHash {
    size_t operator()(const Key &K) const {
      uint64_t H = K.Plan.hash();
      H ^= K.Digest.Lo + 0x9E3779B97F4A7C15ull + (H << 6) + (H >> 2);
      H ^= K.Digest.Hi + 0x9E3779B97F4A7C15ull + (H << 6) + (H >> 2);
      H ^= (static_cast<uint64_t>(K.Fn) * 0xC2B2AE3D27D4EB4Full) ^
           K.Threads;
      return static_cast<size_t>(H);
    }
  };

  /// A memoized execution: the result payload plus the modelled cycle at
  /// which the original run resolved (so hit responses carry honest
  /// modelled metadata).
  struct Entry {
    exec::RunResult Result;
    uint64_t CompletionCycle = 0;
  };

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    uint64_t Insertions = 0;
    /// Approximate bytes currently held (payload estimate).
    uint64_t Bytes = 0;
  };

  explicit MemoCache(size_t CapacityEntries)
      : Capacity(CapacityEntries ? CapacityEntries : 1) {}

  /// Returns a copy of the cached entry for \p K and marks it most
  /// recently used, or nullopt on a miss. Counts the hit or miss, both
  /// locally and in the serve.memo.* metric families.
  std::optional<Entry> lookup(const Key &K);

  /// Inserts \p E under \p K (first write wins; a concurrent duplicate
  /// execution re-inserting the same key is ignored), evicting least
  /// recently used entries when full.
  void insert(const Key &K, Entry E);

  Stats stats() const;
  size_t size() const;
  size_t capacity() const { return Capacity; }

private:
  using Slot = std::pair<Key, Entry>;

  static uint64_t entryBytes(const Entry &E);

  const size_t Capacity;
  mutable std::mutex Mutex;
  std::list<Slot> Lru; // Front = most recently used.
  std::unordered_map<Key, std::list<Slot>::iterator, KeyHash> Index;
  Stats Counters;
};

} // namespace serve
} // namespace parrec

#endif // PARREC_SERVE_MEMOCACHE_H
