//===- Engine.cpp - Multi-tenant serving engine -----------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "serve/Engine.h"

#include "exec/InputDigest.h"
#include "exec/ParallelFor.h"
#include "gpu/Pipeline.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "runtime/CompiledRecurrence.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>

using namespace parrec;
using namespace parrec::serve;

std::string_view serve::statusName(Status S) {
  switch (S) {
  case Status::Ok:
    return "ok";
  case Status::QueueFull:
    return "queue_full";
  case Status::Deadline:
    return "deadline";
  case Status::Aborted:
    return "aborted";
  case Status::Failed:
    return "failed";
  }
  return "unknown";
}

namespace {

using Wall = std::chrono::steady_clock;

double secondsSince(Wall::time_point From, Wall::time_point To) {
  return std::chrono::duration<double>(To - From).count();
}

/// serve::Status values indexed by their underlying integer, for the
/// flight recorder's packed status byte.
std::vector<std::string> statusNameTable() {
  return {"ok", "queue_full", "deadline", "aborted", "failed"};
}

/// The tenant label value for metrics: bounded-cardinality label sets
/// make a hostile tenant stream safe, but an empty name still needs a
/// stable, greppable value.
std::string tenantLabel(const std::string &Tenant) {
  return Tenant.empty() ? "none" : Tenant;
}

/// Resolves a future: publish the response, wake waiters, run the
/// callback on this thread. Never called with engine locks held, so a
/// callback may re-enter the engine (e.g. submit a follow-up request).
void resolve(detail::FutureState &State, Response &&Resp) {
  std::function<void(const Response &)> Callback;
  {
    std::lock_guard<std::mutex> Lock(State.Mutex);
    State.Resp = std::move(Resp);
    State.Ready = true;
    Callback = State.Callback;
  }
  State.Cv.notify_all();
  if (Callback)
    Callback(State.Resp);
}

/// Estimated modelled cost of one batch for least-loaded placement:
/// domain cells per member times the member count. A deliberate
/// estimate — actual cycles are only known after execution — but
/// monotone in problem size and deterministic, which is what placement
/// needs.
uint64_t estimateBatchCost(const exec::PlanKey &Key, size_t Members) {
  uint64_t Cells = 1;
  for (size_t I = 0; I != Key.Lower.size(); ++I) {
    int64_t Extent = Key.Upper[I] - Key.Lower[I] + 1;
    if (Extent > 0)
      Cells *= static_cast<uint64_t>(Extent);
  }
  return std::max<uint64_t>(1, Cells) *
         std::max<size_t>(1, Members);
}

} // namespace

/// A closed batch: one plan, many compatible requests, one device.
struct Engine::Batch {
  uint64_t Id = 0;
  const runtime::CompiledRecurrence *Fn = nullptr;
  exec::PlanKey Key;
  uint64_t OpenTick = 0;
  std::shared_ptr<const exec::ExecutablePlan> Plan;
  std::vector<Pending> Members;
};

/// One simulated device plus its dispatch queue.
struct Engine::DeviceLane {
  unsigned Index = 0;
  gpu::Device Device;
  std::mutex Mutex;
  std::condition_variable Cv;
  std::deque<Batch> Batches; // Guarded by Mutex.
  bool Closed = false;       // Guarded by Mutex; no more batches coming.
};

Engine::Engine(Options Options)
    : Opts(std::move(Options)), Flight(Opts.FlightRecorderSlots) {
  if (Opts.FlightDumpPath.empty())
    if (const char *Env = std::getenv("ParRec_FLIGHT_DUMP"))
      Opts.FlightDumpPath = Env;
  TenantNames.push_back(""); // Id 0: unnamed tenant.
  Opts.Devices = std::max(1u, Opts.Devices);
  Opts.QueueCapacity = std::max<size_t>(1, Opts.QueueCapacity);
  Opts.MaxBatch = std::max<size_t>(1, Opts.MaxBatch);
  Paused = Opts.StartPaused;
  for (const auto &[Tenant, Weight] : Opts.TenantWeights)
    Queue.setWeight(Tenant, Weight);
  if (Opts.Memo)
    Memo = Opts.Memo;
  else if (Opts.MemoCapacity)
    Memo = std::make_shared<MemoCache>(Opts.MemoCapacity);
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Counters.DeviceBatches.assign(Opts.Devices, 0);
    Counters.DeviceRequests.assign(Opts.Devices, 0);
    Counters.DeviceCycles.assign(Opts.Devices, 0);
  }
  LaneAssignedCost.assign(Opts.Devices, 0);
  Lanes.reserve(Opts.Devices);
  for (unsigned I = 0; I != Opts.Devices; ++I) {
    auto Lane = std::make_unique<DeviceLane>();
    Lane->Index = I;
    Lane->Device = gpu::Device(Opts.Model);
    Lanes.push_back(std::move(Lane));
  }
  Coalescer = std::thread([this] { coalescerMain(); });
  DeviceThreads.reserve(Opts.Devices);
  for (unsigned I = 0; I != Opts.Devices; ++I)
    DeviceThreads.emplace_back([this, I] { deviceMain(I); });
}

Engine::~Engine() { shutdown(ShutdownMode::Drain); }

void Engine::advanceTo(uint64_t Tick) {
  uint64_t Current = Clock.load(std::memory_order_relaxed);
  while (Tick > Current &&
         !Clock.compare_exchange_weak(Current, Tick,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
  }
  QueueCv.notify_all();
}

void Engine::pause() {
  std::lock_guard<std::mutex> Lock(QueueMutex);
  Paused = true;
}

void Engine::resume() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Paused = false;
  }
  QueueCv.notify_all();
}

size_t Engine::queueDepth() const {
  std::lock_guard<std::mutex> Lock(QueueMutex);
  return Queue.size();
}

Engine::Stats Engine::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  return Counters;
}

uint32_t Engine::tenantId(const std::string &Tenant) {
  if (Tenant.empty())
    return 0;
  std::lock_guard<std::mutex> Lock(TenantMutex);
  auto It = TenantIdTable.find(Tenant);
  if (It != TenantIdTable.end())
    return It->second;
  // Same bound as the metrics registry's series cap: beyond it every new
  // tenant name shares one "other" id, so the table cannot grow without
  // bound under a hostile name stream.
  if (TenantIdTable.size() >= obs::MetricsRegistry::MaxSeriesPerFamily) {
    auto OtherIt = TenantIdTable.find("other");
    if (OtherIt != TenantIdTable.end())
      return OtherIt->second;
    uint32_t Id = static_cast<uint32_t>(TenantNames.size());
    TenantNames.push_back("other");
    TenantIdTable.emplace("other", Id);
    return Id;
  }
  uint32_t Id = static_cast<uint32_t>(TenantNames.size());
  TenantNames.push_back(Tenant);
  TenantIdTable.emplace(Tenant, Id);
  return Id;
}

std::string Engine::dumpFlightRecorder() const {
  std::vector<std::string> Tenants;
  {
    std::lock_guard<std::mutex> Lock(TenantMutex);
    Tenants = TenantNames;
  }
  return Flight.json(statusNameTable(), Tenants);
}

bool Engine::dumpFlightRecorder(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out << dumpFlightRecorder() << '\n';
  return static_cast<bool>(Out);
}

void Engine::maybeAutoDump(Status St) {
  if (St != Status::Deadline && St != Status::Failed)
    return;
  if (Opts.FlightDumpPath.empty())
    return;
  if (FlightDumped.exchange(true, std::memory_order_acq_rel))
    return;
  dumpFlightRecorder(Opts.FlightDumpPath);
}

void Engine::complete(Pending &P, Status St, std::string Error) {
  uint64_t Now = now();
  Wall::time_point NowWall = Wall::now();
  obs::MetricsRegistry &M = obs::MetricsRegistry::global();
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    switch (St) {
    case Status::QueueFull:
      ++Counters.Rejected;
      break;
    case Status::Deadline:
      ++Counters.DeadlineShed;
      break;
    case Status::Aborted:
      ++Counters.Aborted;
      break;
    case Status::Failed:
      ++Counters.Failed;
      break;
    case Status::Ok:
      break; // Ok responses are built in executeBatch.
    }
  }
  switch (St) {
  case Status::QueueFull:
    M.add("serve.rejected");
    break;
  case Status::Deadline:
    M.add("serve.deadline_shed");
    break;
  case Status::Aborted:
    M.add("serve.aborted");
    break;
  case Status::Failed:
    M.add("serve.failed");
    break;
  case Status::Ok:
    break;
  }
  M.add("serve.responses",
        obs::Labels{{"status", statusName(St)},
                    {"tenant", tenantLabel(P.Req.Tenant)}});
  Flight.record(FlightEventKind::Complete, P.Req.Id, Now,
                static_cast<uint8_t>(St), /*Device=*/0, P.TenantId,
                /*Batch=*/0);
  maybeAutoDump(St);
  Response Resp;
  Resp.Id = P.Req.Id;
  Resp.St = St;
  Resp.SubmitTick = P.SubmitTick;
  Resp.CompleteTick = Now;
  Resp.TotalSeconds = secondsSince(P.SubmitWall, NowWall);
  Resp.CompletionSeq = CompletionSeq.fetch_add(1, std::memory_order_relaxed);
  Resp.Error = std::move(Error);
  resolve(*P.State, std::move(Resp));
}

void Engine::completeMemoHit(Pending &P, MemoCache::Entry Hit) {
  // A hit is a completed Ok request that never touched the queue or a
  // device: full submit + complete bookkeeping, zero device counters.
  uint64_t Now = now();
  Wall::time_point NowWall = Wall::now();
  obs::MetricsRegistry &M = obs::MetricsRegistry::global();
  const std::string TenantLbl = tenantLabel(P.Req.Tenant);
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Counters.Submitted;
    ++Counters.Completed;
    ++Counters.MemoHits;
  }
  M.add("serve.requests");
  M.add("serve.requests_by_tenant", obs::Labels{{"tenant", TenantLbl}});
  M.add("serve.responses", obs::Labels{{"status", statusName(Status::Ok)},
                                       {"tenant", TenantLbl}});
  obs::Labels TenantL{{"tenant", TenantLbl}};
  double Total = secondsSince(P.SubmitWall, NowWall);
  M.observe("serve.latency.queue_wait_seconds", TenantL, 0.0);
  M.observe("serve.latency.execute_seconds", TenantL, 0.0);
  M.observe("serve.latency.total_seconds", TenantL, Total);
  Flight.record(FlightEventKind::Submit, P.Req.Id, P.SubmitTick,
                static_cast<uint8_t>(Status::Ok), 0, P.TenantId, 0);
  Flight.record(FlightEventKind::Complete, P.Req.Id, Now,
                static_cast<uint8_t>(Status::Ok), 0, P.TenantId, 0);
  Response Resp;
  Resp.Id = P.Req.Id;
  Resp.St = Status::Ok;
  Resp.Result = std::move(Hit.Result);
  Resp.SubmitTick = P.SubmitTick;
  Resp.CompleteTick = Now;
  Resp.TotalSeconds = Total;
  Resp.CompletionSeq = CompletionSeq.fetch_add(1, std::memory_order_relaxed);
  Resp.CompletionCycle = Hit.CompletionCycle;
  Resp.Memoized = true;
  resolve(*P.State, std::move(Resp));
}

void Engine::maybeMemoize(const Pending &P, const exec::RunResult &R,
                          uint64_t CompletionCycle) {
  if (!P.Memoize || !Memo)
    return;
  MemoCache::Entry E;
  E.Result = R;
  // Run-scoped objects never enter the cache: the request did not ask
  // for a table or a timeline (Memoize excludes those), but a globally
  // enabled tracer can still have attached a timeline.
  E.Result.Timeline.reset();
  E.Result.Table.reset();
  E.CompletionCycle = CompletionCycle;
  Memo->insert(P.MemoKey, std::move(E));
}

Future Engine::submit(Request Req,
                      std::function<void(const Response &)> Callback) {
  auto State = std::make_shared<detail::FutureState>();
  State->Callback = std::move(Callback);
  Future F(State);

  obs::Span Span("serve.enqueue", "serve");
  Pending P;
  P.Req = std::move(Req);
  P.Req.Id = NextRequestId.fetch_add(1, std::memory_order_relaxed);
  P.State = State;
  P.SubmitTick = now();
  P.SubmitWall = Wall::now();
  P.TenantId = tenantId(P.Req.Tenant);
  if (Span.active()) {
    Span.arg("request", P.Req.Id);
    if (P.Req.Fn)
      Span.arg("function", P.Req.Fn->decl().Name);
    if (!P.Req.Tenant.empty())
      Span.arg("tenant", P.Req.Tenant);
  }

  // Validate and fingerprint on the submitting thread: the domain box
  // plus the plan key define which batch this request can join.
  DiagnosticEngine Diags;
  std::optional<solver::DomainBox> Box;
  if (P.Req.Fn)
    Box = P.Req.Fn->domainFor(P.Req.Args, Diags);
  else
    Diags.error({}, "request has no compiled function");
  if (!Box) {
    if (Span.active())
      Span.arg("status", statusName(Status::Failed));
    Flight.record(FlightEventKind::Submit, P.Req.Id, P.SubmitTick,
                  static_cast<uint8_t>(Status::Failed), 0, P.TenantId, 0);
    complete(P, Status::Failed, Diags.str());
    return F;
  }
  P.Box = std::move(*Box);
  P.Key = exec::PlanKey::make(
      P.Box, P.Req.Options.UseSlidingWindow, P.Req.Options.KeepTable,
      P.Req.Options.ForcedSchedule ? &*P.Req.Options.ForcedSchedule
                                   : nullptr,
      P.Req.Options.Autotune,
      P.Req.Options.Evaluator == exec::EvalKind::Jit);

  // Result memoization (the serving-layer PlanCache): identical request
  // contents under an identical plan key resolve from the cache without
  // queueing. Requests that keep run-scoped payloads are exempt.
  if (Memo && !P.Req.Options.KeepTable && !P.Req.Options.Trace) {
    P.Memoize = true;
    P.MemoKey.Fn = reinterpret_cast<uintptr_t>(P.Req.Fn);
    P.MemoKey.Plan = P.Key;
    P.MemoKey.Digest = exec::inputDigest(P.Req.Args);
    P.MemoKey.Threads = P.Req.Options.Threads;
    if (std::optional<MemoCache::Entry> Hit = Memo->lookup(P.MemoKey)) {
      if (Span.active())
        Span.arg("status", "memo_hit");
      completeMemoHit(P, std::move(*Hit));
      return F;
    }
  }

  // P is moved into the queue on admission; everything telemetry needs
  // afterwards is captured first.
  const uint64_t Id = P.Req.Id;
  const uint32_t Tenant = P.TenantId;
  const uint64_t SubmitTick = P.SubmitTick;
  const std::string TenantLbl = tenantLabel(P.Req.Tenant);
  size_t Depth = 0;
  size_t TenantDepth = 0;
  bool Admitted = false;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (!Stopping && Queue.size() < Opts.QueueCapacity) {
      P.Seq = NextRequestSeq++;
      const std::string &TenantName = P.Req.Tenant;
      Admitted = true;
      Queue.push(std::move(P));
      Depth = Queue.size();
      TenantDepth = Queue.tenantDepth(TenantName);
    }
  }
  obs::MetricsRegistry &M = obs::MetricsRegistry::global();
  if (!Admitted) {
    // Backpressure: resolve immediately instead of growing without
    // bound. The producer decides whether to retry, slow down or drop.
    if (Span.active())
      Span.arg("status", statusName(Status::QueueFull));
    Flight.record(FlightEventKind::Submit, P.Req.Id, P.SubmitTick,
                  static_cast<uint8_t>(Status::QueueFull), 0, P.TenantId, 0);
    complete(P, Status::QueueFull);
    return F;
  }
  Flight.record(FlightEventKind::Submit, Id, SubmitTick,
                static_cast<uint8_t>(Status::Ok), 0, Tenant, 0);
  Span.flowStart(Id);
  M.add("serve.requests");
  M.add("serve.requests_by_tenant", obs::Labels{{"tenant", TenantLbl}});
  M.add("serve.tenant.enqueued", obs::Labels{{"tenant", TenantLbl}});
  M.observe("serve.queue_depth", static_cast<double>(Depth));
  M.observe("serve.tenant.queue_depth",
            obs::Labels{{"tenant", TenantLbl}},
            static_cast<double>(TenantDepth));
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Counters.Submitted;
    Counters.MaxQueueDepth =
        std::max(Counters.MaxQueueDepth, static_cast<uint64_t>(Depth));
  }
  if (Span.active()) {
    Span.arg("status", "queued");
    Span.arg("queue_depth", static_cast<uint64_t>(Depth));
  }
  QueueCv.notify_all();
  return F;
}

bool Engine::tryContinuousJoin(Pending &P) {
  if (!Opts.Coalesce || Opts.MaxBatch <= 1)
    return false;
  for (std::unique_ptr<DeviceLane> &LanePtr : Lanes) {
    DeviceLane &Lane = *LanePtr;
    uint64_t BatchId = 0;
    bool Joined = false;
    uint64_t RequestId = 0;
    uint32_t Tenant = 0;
    std::string TenantName;
    {
      std::lock_guard<std::mutex> LaneLock(Lane.Mutex);
      // Only batches still sitting in the lane deque are candidates: a
      // batch deviceMain has popped is executing and never reopened.
      for (Batch &B : Lane.Batches) {
        if (B.Fn != P.Req.Fn || !(B.Key == P.Key) ||
            B.Members.size() >= Opts.MaxBatch)
          continue;
        BatchId = B.Id;
        RequestId = P.Req.Id;
        Tenant = P.TenantId;
        TenantName = P.Req.Tenant;
        B.Members.push_back(std::move(P));
        Joined = true;
        break;
      }
    }
    if (!Joined)
      continue;
    Flight.record(FlightEventKind::Coalesce, RequestId, now(),
                  static_cast<uint8_t>(Status::Ok),
                  static_cast<uint16_t>(Lane.Index), Tenant, BatchId);
    obs::MetricsRegistry &M = obs::MetricsRegistry::global();
    M.add("serve.continuous_joins");
    M.add("serve.tenant.absorbed",
          obs::Labels{{"tenant", tenantLabel(TenantName)}});
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++Counters.ContinuousJoins;
    }
    return true;
  }
  return false;
}

unsigned Engine::pickLane(const Batch &B) {
  // Least-loaded by accumulated estimated modelled cycles. The load is
  // never decremented as batches finish: decisions depend only on the
  // batch sequence (LPT-style greedy placement), never on wall-clock
  // execution progress, so a replay places every batch identically.
  unsigned Best = 0;
  for (unsigned I = 1; I < LaneAssignedCost.size(); ++I)
    if (LaneAssignedCost[I] < LaneAssignedCost[Best])
      Best = I;
  LaneAssignedCost[Best] += estimateBatchCost(B.Key, B.Members.size());
  return Best;
}

void Engine::coalescerMain() {
  obs::MetricsRegistry &M = obs::MetricsRegistry::global();
  std::unique_lock<std::mutex> Lock(QueueMutex);
  while (true) {
    QueueCv.wait(Lock, [&] {
      return Stopping || (!Paused && !Queue.empty());
    });
    if (Queue.empty()) {
      if (Stopping)
        break;
      continue;
    }
    if (Paused && !Stopping)
      continue;

    // Requests shed while assembling; completed after the lock drops.
    std::vector<Pending> Shed;

    // Head selection: strict priority across classes, deficit round
    // robin across tenants within a class, FIFO within a tenant.
    std::optional<Pending> HeadOpt = Queue.pop(now(), &Shed);
    if (!HeadOpt) {
      Lock.unlock();
      for (Pending &P : Shed)
        complete(P, Status::Deadline);
      Lock.lock();
      continue;
    }
    Pending Head = std::move(*HeadOpt);

    // Continuous batching: a head whose PlanKey matches a batch still
    // waiting in a lane joins that batch instead of opening a new one
    // (and a new linger window). Lane locks nest outside the queue
    // lock, so drop it first.
    if (Opts.ContinuousBatch) {
      Lock.unlock();
      for (Pending &P : Shed)
        complete(P, Status::Deadline);
      Shed.clear();
      M.add("serve.tenant.dequeued",
            obs::Labels{{"tenant", tenantLabel(Head.Req.Tenant)}});
      bool Joined = tryContinuousJoin(Head);
      Lock.lock();
      if (Joined)
        continue;
    }

    Batch B;
    B.Id = NextBatchId++;
    B.Fn = Head.Req.Fn;
    B.Key = Head.Key;
    B.OpenTick = now();
    B.Members.push_back(std::move(Head));
    const uint64_t CloseTick = B.OpenTick + Opts.LingerTicks;

    // Absorb every compatible queued request, in submission order. The
    // SubmitTick bound makes the linger window a property of virtual
    // time alone: a request virtually submitted after the window closed
    // never joins, however slowly this thread is scheduled. Absorption
    // consumes no fair-queue deficit — riders share a batch the head's
    // tenant already paid for.
    auto absorb = [&] {
      if (B.Members.size() >= Opts.MaxBatch)
        return;
      Queue.absorb(
          [&](const Pending &P) {
            return P.SubmitTick <= CloseTick && P.Req.Fn == B.Fn &&
                   P.Key == B.Key;
          },
          Opts.MaxBatch - B.Members.size(), now(), B.Members, Shed);
    };

    if (Opts.Coalesce && Opts.MaxBatch > 1) {
      absorb();
      // Size-or-max-linger trigger: hold the batch open for compatible
      // arrivals until the virtual clock passes the window (strictly,
      // so boundary-tick arrivals always make it in) or it fills up.
      while (B.Members.size() < Opts.MaxBatch && !Stopping &&
             Opts.LingerTicks != 0 && now() <= CloseTick) {
        QueueCv.wait(Lock);
        absorb();
      }
    }

    Lock.unlock();
    for (Pending &P : Shed)
      complete(P, Status::Deadline);
    if (!Opts.ContinuousBatch)
      M.add("serve.tenant.dequeued",
            obs::Labels{{"tenant",
                         tenantLabel(B.Members[0].Req.Tenant)}});
    for (size_t I = 1; I < B.Members.size(); ++I)
      M.add("serve.tenant.absorbed",
            obs::Labels{{"tenant",
                         tenantLabel(B.Members[I].Req.Tenant)}});

    {
      obs::Span Span("serve.coalesce", "serve");
      if (Span.active()) {
        Span.arg("batch", B.Id);
        Span.arg("requests", static_cast<uint64_t>(B.Members.size()));
        Span.arg("function", B.Fn->decl().Name);
        Span.arg("fingerprint", B.Key.hash());
      }
      M.add("serve.batches");
      {
        std::lock_guard<std::mutex> SLock(StatsMutex);
        ++Counters.Batches;
      }

      // One plan serves the whole batch: a PlanCache hit after the
      // first same-shaped batch, so schedule synthesis and loop
      // generation are paid once per shape, not once per request.
      DiagnosticEngine Diags;
      B.Plan = B.Fn->planFor(B.Members[0].Box, B.Members[0].Req.Options,
                             /*Preselected=*/nullptr, Diags);
      if (Span.active())
        Span.arg("planned", B.Plan != nullptr);
      if (!B.Plan) {
        std::string Error = Diags.str();
        for (Pending &P : B.Members)
          complete(P, Status::Failed, Error);
        Lock.lock();
        continue;
      }

      DeviceLane &Lane = *Lanes[pickLane(B)];
      if (Span.active()) {
        Span.arg("device", Lane.Index);
        for (const Pending &P : B.Members)
          Span.flowStep(P.Req.Id);
      }
      M.observe("serve.coalesced_per_batch",
                obs::Labels{{"device", std::to_string(Lane.Index)}},
                static_cast<double>(B.Members.size()));
      for (const Pending &P : B.Members)
        Flight.record(FlightEventKind::Coalesce, P.Req.Id, now(),
                      static_cast<uint8_t>(Status::Ok),
                      static_cast<uint16_t>(Lane.Index), P.TenantId, B.Id);
      {
        std::lock_guard<std::mutex> LaneLock(Lane.Mutex);
        Lane.Batches.push_back(std::move(B));
      }
      Lane.Cv.notify_all();
    }
    Lock.lock();
  }
  Lock.unlock();
  // No more batches can arrive: release the device threads.
  for (std::unique_ptr<DeviceLane> &Lane : Lanes) {
    {
      std::lock_guard<std::mutex> LaneLock(Lane->Mutex);
      Lane->Closed = true;
    }
    Lane->Cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> QLock(QueueMutex);
    CoalescerDone = true;
  }
}

void Engine::deviceMain(unsigned DeviceIndex) {
  DeviceLane &Lane = *Lanes[DeviceIndex];
  while (true) {
    Batch B;
    {
      std::unique_lock<std::mutex> Lock(Lane.Mutex);
      Lane.Cv.wait(Lock,
                   [&] { return Lane.Closed || !Lane.Batches.empty(); });
      if (Lane.Batches.empty())
        return;
      B = std::move(Lane.Batches.front());
      Lane.Batches.pop_front();
    }
    executeBatch(Lane, B);
  }
}

void Engine::executeBatch(DeviceLane &Lane, Batch &B) {
  // Deadlines are re-checked when the device dequeues the batch: work
  // that expired while waiting in the lane is shed, not executed.
  std::vector<Pending> Members;
  Members.reserve(B.Members.size());
  for (Pending &P : B.Members) {
    if (P.Req.DeadlineTick != 0 && now() > P.Req.DeadlineTick)
      complete(P, Status::Deadline);
    else
      Members.push_back(std::move(P));
  }
  if (Members.empty())
    return;

  obs::Span Span("serve.dispatch", "serve");
  if (Span.active()) {
    Span.arg("device", Lane.Index);
    Span.arg("batch", B.Id);
    Span.arg("requests", static_cast<uint64_t>(Members.size()));
    Span.arg("function", B.Fn->decl().Name);
    for (const Pending &P : Members)
      Span.flowStep(P.Req.Id);
  }
  for (const Pending &P : Members)
    Flight.record(FlightEventKind::Dispatch, P.Req.Id, now(),
                  static_cast<uint8_t>(Status::Ok),
                  static_cast<uint16_t>(Lane.Index), P.TenantId, B.Id);
  Wall::time_point ExecStart = Wall::now();

  // The engine's host budget is divided per device, mirroring
  // runGpuBatch's batch x scan split so N devices never oversubscribe
  // the machine. Worker counts never change results.
  exec::SimulatedGpuBackend Backend(Lane.Device.costModel());
  unsigned Budget =
      std::max(1u, exec::hostWorkerBudget() / Opts.Devices);
  unsigned BatchWorkers = exec::resolveWorkerCount(
      Opts.BatchWorkersPerDevice ? Opts.BatchWorkersPerDevice : Budget,
      Members.size());
  unsigned ScanWorkers = Opts.ScanWorkersPerDevice
                             ? Opts.ScanWorkersPerDevice
                             : std::max(1u, Budget / BatchWorkers);

  if (Opts.Pipeline) {
    executeBatchPipelined(Lane, B, Members, Span, ExecStart, Backend,
                          BatchWorkers, ScanWorkers);
    return;
  }

  std::vector<exec::RunResult> Results(Members.size());
  exec::parallelFor(BatchWorkers, Members.size(), [&](size_t I) {
    codegen::Evaluator Eval(B.Fn->decl(), B.Fn->info());
    Eval.bind(Members[I].Req.Args);
    exec::RunOptions Ro = Members[I].Req.Options;
    Ro.ScanWorkers = ScanWorkers;
    Ro.FlowId = Members[I].Req.Id; // Trace flow id only; never a result.
    Results[I] = Backend.execute(*B.Plan, Eval, Ro);
    if (obs::Tracer::enabled() && Results[I].Timeline)
      gpu::emitBlockTimeline(static_cast<unsigned>(I),
                             *Results[I].Timeline);
  });

  // The batch occupies the device's multiprocessors as one dispatch:
  // one modelled kernel launch for the whole batch (the coalescing win)
  // and an LPT makespan across the multiprocessors.
  std::vector<uint64_t> ProblemCycles;
  ProblemCycles.reserve(Results.size());
  for (const exec::RunResult &R : Results)
    ProblemCycles.push_back(R.Cycles);
  uint64_t Makespan = Lane.Device.dispatchProblems(ProblemCycles);
  Wall::time_point ExecEnd = Wall::now();
  double ExecSeconds = secondsSince(ExecStart, ExecEnd);
  if (Span.active()) {
    Span.arg("makespan_cycles", Makespan);
    Span.arg("batch_workers", BatchWorkers);
    Span.arg("scan_workers", ScanWorkers);
  }

  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Counters.DeviceBatches[Lane.Index];
    Counters.DeviceRequests[Lane.Index] += Members.size();
    Counters.DeviceCycles[Lane.Index] += Makespan;
    Counters.Completed += Members.size();
  }

  obs::MetricsRegistry &M = obs::MetricsRegistry::global();
  uint64_t Now = now();
  for (size_t I = 0; I != Members.size(); ++I) {
    Pending &P = Members[I];
    maybeMemoize(P, Results[I], Makespan);
    Response Resp;
    Resp.Id = P.Req.Id;
    Resp.St = Status::Ok;
    Resp.Result = std::move(Results[I]);
    Resp.SubmitTick = P.SubmitTick;
    Resp.CompleteTick = Now;
    Resp.QueueSeconds = secondsSince(P.SubmitWall, ExecStart);
    Resp.ExecSeconds = ExecSeconds;
    Resp.TotalSeconds = secondsSince(P.SubmitWall, ExecEnd);
    Resp.Device = Lane.Index;
    Resp.BatchId = B.Id;
    Resp.BatchSize = Members.size();
    // Everything in a barrier batch resolves when the batch drains.
    Resp.CompletionCycle = Makespan;
    Resp.CompletionSeq =
        CompletionSeq.fetch_add(1, std::memory_order_relaxed);
    obs::Labels TenantL{{"tenant", tenantLabel(P.Req.Tenant)}};
    M.observe("serve.latency.queue_wait_seconds", TenantL,
              Resp.QueueSeconds);
    M.observe("serve.latency.execute_seconds", TenantL, Resp.ExecSeconds);
    M.observe("serve.latency.total_seconds", TenantL, Resp.TotalSeconds);
    M.add("serve.responses",
          obs::Labels{{"status", statusName(Status::Ok)},
                      {"tenant", tenantLabel(P.Req.Tenant)}});
    Flight.record(FlightEventKind::Complete, P.Req.Id, Now,
                  static_cast<uint8_t>(Status::Ok),
                  static_cast<uint16_t>(Lane.Index), P.TenantId, B.Id);
    resolve(*P.State, std::move(Resp));
  }
}

void Engine::executeBatchPipelined(DeviceLane &Lane, Batch &B,
                                   std::vector<Pending> &Members,
                                   obs::Span &Span,
                                   std::chrono::steady_clock::time_point
                                       ExecStart,
                                   const exec::SimulatedGpuBackend &Backend,
                                   unsigned BatchWorkers,
                                   unsigned ScanWorkers) {
  // Systolic dispatch with early publication: completed problems feed a
  // pipeline planner in submission order; the moment a problem's launch
  // seals, its placement — completion cycle included — is final and its
  // future resolves, while later batch members may still be executing.
  // PublishMutex serialises planner feeding and publication, so futures
  // resolve in submission order and the flight recorder's Complete
  // events carry monotone request ids. Callbacks therefore run under
  // this batch-local mutex (never an engine lock): they may re-enter the
  // engine, but must not block on a *later* future of the same batch —
  // the same constraint the barrier path's in-order resolution imposes.
  gpu::PipelinePlanner Planner(Lane.Device.costModel(), Opts.PackSmall,
                               /*RecordStageStarts=*/
                               obs::Tracer::enabled());
  std::vector<exec::RunResult> Results(Members.size());
  std::vector<char> Done(Members.size(), 0);
  size_t Cursor = 0;
  std::mutex PublishMutex;
  obs::MetricsRegistry &M = obs::MetricsRegistry::global();

  // Publishes one finalised problem. PublishMutex held.
  auto Publish = [&](size_t I) {
    const gpu::PipelinePlacement &Pl = Planner.placement(I);
    Pending &P = Members[I];
    if (obs::Tracer::enabled() && Results[I].Timeline)
      gpu::emitBlockTimeline(Pl.Multiprocessor, *Results[I].Timeline,
                             Pl.StageStartCycles, Pl.LaneOffset,
                             P.Req.Id);
    // The planner needed the timeline; the caller may not have. The
    // tracer already got its device slices above, and the barrier path
    // never carries a timeline for requests that did not ask — so drop
    // it unless the request itself set Trace, keeping response payloads
    // identical across engines.
    if (!P.Req.Options.Trace)
      Results[I].Timeline.reset();
    maybeMemoize(P, Results[I], Pl.CompletionCycles);
    Wall::time_point NowWall = Wall::now();
    uint64_t Now = now();
    Response Resp;
    Resp.Id = P.Req.Id;
    Resp.St = Status::Ok;
    Resp.Result = std::move(Results[I]);
    Resp.SubmitTick = P.SubmitTick;
    Resp.CompleteTick = Now;
    Resp.QueueSeconds = secondsSince(P.SubmitWall, ExecStart);
    Resp.ExecSeconds = secondsSince(ExecStart, NowWall);
    Resp.TotalSeconds = secondsSince(P.SubmitWall, NowWall);
    Resp.Device = Lane.Index;
    Resp.BatchId = B.Id;
    Resp.BatchSize = Members.size();
    Resp.CompletionCycle = Pl.CompletionCycles;
    Resp.CompletionSeq =
        CompletionSeq.fetch_add(1, std::memory_order_relaxed);
    obs::Labels TenantL{{"tenant", tenantLabel(P.Req.Tenant)}};
    M.observe("serve.latency.queue_wait_seconds", TenantL,
              Resp.QueueSeconds);
    M.observe("serve.latency.execute_seconds", TenantL, Resp.ExecSeconds);
    M.observe("serve.latency.total_seconds", TenantL, Resp.TotalSeconds);
    M.add("serve.responses",
          obs::Labels{{"status", statusName(Status::Ok)},
                      {"tenant", tenantLabel(P.Req.Tenant)}});
    Flight.record(FlightEventKind::Complete, P.Req.Id, Now,
                  static_cast<uint8_t>(Status::Ok),
                  static_cast<uint16_t>(Lane.Index), P.TenantId, B.Id);
    resolve(*P.State, std::move(Resp));
  };

  exec::parallelFor(BatchWorkers, Members.size(), [&](size_t I) {
    codegen::Evaluator Eval(B.Fn->decl(), B.Fn->info());
    Eval.bind(Members[I].Req.Args);
    exec::RunOptions Ro = Members[I].Req.Options;
    Ro.ScanWorkers = ScanWorkers;
    Ro.FlowId = Members[I].Req.Id; // Trace flow id only; never a result.
    Ro.Trace = true; // The planner re-times the partition timeline.
    Results[I] = Backend.execute(*B.Plan, Eval, Ro);
    std::lock_guard<std::mutex> Lock(PublishMutex);
    Done[I] = 1;
    // Feed the prefix of completed problems to the planner in
    // submission order; publish whatever it finalises.
    while (Cursor < Members.size() && Done[Cursor]) {
      for (size_t Final : Planner.add(gpu::PipelineProfile::make(
               Results[Cursor].Timeline, Results[Cursor].Cycles,
               static_cast<unsigned>(Results[Cursor].Metrics.Threads))))
        Publish(Final);
      ++Cursor;
    }
  });

  uint64_t Makespan = 0;
  {
    std::lock_guard<std::mutex> Lock(PublishMutex);
    for (size_t Final : Planner.finish())
      Publish(Final);
    const gpu::PipelineStats &S = Planner.stats();
    Makespan = S.MakespanCycles;
    for (size_t Mp = 0; Mp != S.MultiprocessorFinish.size(); ++Mp) {
      M.observe("exec.pipeline_overlap_cycles",
                static_cast<double>(S.MultiprocessorOverlap[Mp]));
      M.observe("exec.device_idle_cycles",
                static_cast<double>(S.MultiprocessorIdle[Mp]));
    }
    if (Span.active()) {
      Span.arg("makespan_cycles", Makespan);
      Span.arg("pipelined", uint64_t{1});
      Span.arg("groups", S.Groups);
      Span.arg("overlap_cycles", S.OverlapCycles);
      Span.arg("idle_cycles", S.IdleCycles);
      Span.arg("batch_workers", BatchWorkers);
      Span.arg("scan_workers", ScanWorkers);
    }
  }

  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Counters.DeviceBatches[Lane.Index];
    Counters.DeviceRequests[Lane.Index] += Members.size();
    Counters.DeviceCycles[Lane.Index] += Makespan;
    Counters.Completed += Members.size();
  }
}

void Engine::shutdown(ShutdownMode Mode) {
  std::lock_guard<std::mutex> SLock(ShutdownMutex);
  if (Joined)
    return;
  std::vector<Pending> ToAbort;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Stopping = true;
    Paused = false;
    Draining = Mode == ShutdownMode::Drain;
    if (Mode == ShutdownMode::Abort)
      ToAbort = Queue.drain();
  }
  QueueCv.notify_all();
  if (Mode == ShutdownMode::Abort) {
    // Flush undispatched batches too; a batch already executing on a
    // device cannot be interrupted and completes normally.
    for (std::unique_ptr<DeviceLane> &Lane : Lanes) {
      std::deque<Batch> Flushed;
      {
        std::lock_guard<std::mutex> Lock(Lane->Mutex);
        Flushed.swap(Lane->Batches);
      }
      Lane->Cv.notify_all();
      for (Batch &B : Flushed)
        for (Pending &P : B.Members)
          ToAbort.push_back(std::move(P));
    }
  }
  for (Pending &P : ToAbort)
    complete(P, Status::Aborted);
  if (Coalescer.joinable())
    Coalescer.join();
  for (std::thread &T : DeviceThreads)
    if (T.joinable())
      T.join();
  Joined = true;
}
