//===- FlightRecorder.cpp - Ring buffer of request lifecycle events -----------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "serve/FlightRecorder.h"

#include "obs/Json.h"

#include <algorithm>

using namespace parrec;
using namespace parrec::serve;

const char *parrec::serve::flightEventKindName(FlightEventKind Kind) {
  switch (Kind) {
  case FlightEventKind::Submit:
    return "submit";
  case FlightEventKind::Coalesce:
    return "coalesce";
  case FlightEventKind::Dispatch:
    return "dispatch";
  case FlightEventKind::Complete:
    return "complete";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t Capacity) {
  Cap = 16;
  while (Cap < Capacity && Cap < (size_t(1) << 30))
    Cap <<= 1;
  Slots = std::make_unique<Slot[]>(Cap);
}

uint64_t FlightRecorder::pack(FlightEventKind Kind, uint8_t Status,
                              uint16_t Device, uint32_t Tenant) {
  return (static_cast<uint64_t>(Kind) << 56) |
         (static_cast<uint64_t>(Status) << 48) |
         (static_cast<uint64_t>(Device) << 32) | Tenant;
}

void FlightRecorder::record(FlightEventKind Kind, uint64_t Request,
                            uint64_t Tick, uint8_t Status, uint16_t Device,
                            uint32_t Tenant, uint64_t Batch) {
  uint64_t Claim = Head.fetch_add(1, std::memory_order_relaxed);
  Slot &S = Slots[Claim & (Cap - 1)];
  // Invalidate, fill, publish: a reader that observes the final version
  // stamp (acquire) sees the payload; one that races sees a version
  // mismatch and skips the slot.
  S.Version.store(0, std::memory_order_release);
  S.Request.store(Request, std::memory_order_relaxed);
  S.Tick.store(Tick, std::memory_order_relaxed);
  S.Batch.store(Batch, std::memory_order_relaxed);
  S.Packed.store(pack(Kind, Status, Device, Tenant),
                 std::memory_order_relaxed);
  S.Version.store(Claim + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> Out;
  Out.reserve(Cap);
  for (size_t I = 0; I < Cap; ++I) {
    const Slot &S = Slots[I];
    uint64_t V1 = S.Version.load(std::memory_order_acquire);
    if (V1 == 0)
      continue;
    FlightEvent E;
    E.Request = S.Request.load(std::memory_order_relaxed);
    E.Tick = S.Tick.load(std::memory_order_relaxed);
    E.Batch = S.Batch.load(std::memory_order_relaxed);
    uint64_t Packed = S.Packed.load(std::memory_order_relaxed);
    uint64_t V2 = S.Version.load(std::memory_order_acquire);
    if (V1 != V2)
      continue; // A writer replaced this slot mid-copy.
    E.Seq = V1 - 1;
    E.Kind = static_cast<FlightEventKind>((Packed >> 56) & 0xff);
    E.Status = static_cast<uint8_t>((Packed >> 48) & 0xff);
    E.Device = static_cast<uint16_t>((Packed >> 32) & 0xffff);
    E.Tenant = static_cast<uint32_t>(Packed & 0xffffffff);
    Out.push_back(E);
  }
  std::sort(Out.begin(), Out.end(),
            [](const FlightEvent &A, const FlightEvent &B) {
              return A.Seq < B.Seq;
            });
  return Out;
}

std::string
FlightRecorder::json(const std::vector<std::string> &StatusNames,
                     const std::vector<std::string> &TenantNames) const {
  std::vector<FlightEvent> Live = events();
  uint64_t Recorded = recorded();
  obs::JsonWriter W;
  W.beginObject();
  W.key("capacity").value(static_cast<uint64_t>(Cap));
  W.key("recorded").value(Recorded);
  W.key("dropped").value(Recorded > Cap ? Recorded - Cap : 0);
  W.key("events").beginArray();
  for (const FlightEvent &E : Live) {
    W.beginObject();
    W.key("seq").value(E.Seq);
    W.key("event").value(flightEventKindName(E.Kind));
    W.key("request").value(E.Request);
    W.key("tick").value(E.Tick);
    if (E.Status < StatusNames.size())
      W.key("status").value(StatusNames[E.Status]);
    else
      W.key("status").value(static_cast<uint64_t>(E.Status));
    W.key("device").value(static_cast<uint64_t>(E.Device));
    W.key("batch").value(E.Batch);
    if (E.Tenant < TenantNames.size())
      W.key("tenant").value(TenantNames[E.Tenant]);
    else
      W.key("tenant").value(static_cast<uint64_t>(E.Tenant));
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}
