//===- Serve.h - Serving-engine request/response types ------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vocabulary of the multi-tenant serving engine: a Request (a
/// compiled recursion plus bound arguments, options, an optional
/// virtual-clock deadline and a priority), the Response it resolves to,
/// and the Future handed back by Engine::submit. Results routed through
/// the engine are bit-identical to a direct CompiledRecurrence::run with
/// the same request options — the engine only changes *when and where*
/// work runs, never what it computes.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_SERVE_SERVE_H
#define PARREC_SERVE_SERVE_H

#include "exec/ExecutionBackend.h"

#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace parrec {
namespace runtime {
class CompiledRecurrence;
} // namespace runtime

namespace serve {

/// Terminal state of a request.
enum class Status {
  /// Executed; Response::Result holds the run result.
  Ok,
  /// Rejected at submission: the bounded queue was at capacity (the
  /// engine's backpressure signal) or the engine was shutting down.
  QueueFull,
  /// Shed at dequeue: the virtual clock had passed the request's
  /// deadline before a device picked it up.
  Deadline,
  /// Dropped by Engine::shutdown(Abort) before execution.
  Aborted,
  /// The request itself was invalid (bad arguments, no valid schedule).
  Failed,
};

std::string_view statusName(Status S);

/// One unit of admission: everything needed to run one problem. The
/// pointed-to recursion, sequences, models and matrices must stay alive
/// until the request's future resolves.
struct Request {
  /// Request id (trace id): allocated monotonically by Engine::submit —
  /// any caller-set value is overwritten. Carried onto the Response, the
  /// flight recorder and the exec-layer spans, and emitted as the Chrome
  /// trace flow id linking this request's enqueue -> coalesce ->
  /// dispatch -> scan slices.
  uint64_t Id = 0;
  const runtime::CompiledRecurrence *Fn = nullptr;
  std::vector<codegen::ArgValue> Args;
  /// Plan-relevant knobs (sliding window, kept table, forced schedule,
  /// AST-evaluator fallback) are honoured per request; worker counts are
  /// overridden by the engine's per-device budget.
  exec::RunOptions Options;
  /// Virtual-clock deadline (Engine::now() domain); 0 means none. An
  /// expired request is shed at dequeue with Status::Deadline instead of
  /// occupying a device.
  uint64_t DeadlineTick = 0;
  /// Higher-priority requests are coalesced and dispatched first.
  int Priority = 0;
  /// Optional tenant label, for traces and diagnostics only.
  std::string Tenant;
};

/// What a request resolved to.
struct Response {
  /// The request id Engine::submit allocated (0 only for responses that
  /// never went through an engine).
  uint64_t Id = 0;
  Status St = Status::Failed;
  /// Valid only when St == Status::Ok; bit-identical to a direct run.
  exec::RunResult Result;
  /// Virtual-clock timestamps (Engine::now() domain).
  uint64_t SubmitTick = 0;
  uint64_t CompleteTick = 0;
  /// Host wall-clock latency split: submission to batch dispatch, the
  /// batch's execution window, and end to end.
  double QueueSeconds = 0.0;
  double ExecSeconds = 0.0;
  double TotalSeconds = 0.0;
  /// Where and with whom the request ran (Ok responses only).
  unsigned Device = 0;
  uint64_t BatchId = 0;
  uint64_t BatchSize = 0;
  /// Completion order stamp (monotonic across the engine); lets tests
  /// observe dispatch ordering deterministically.
  uint64_t CompletionSeq = 0;
  /// Modelled cycle (batch-start domain, kernel launch included) at
  /// which this request's result resolved on its device. Equals the
  /// batch makespan on the barrier path; under Engine::Options::Pipeline
  /// it is the problem's own completion, strictly earlier than batch end
  /// for every non-final member. For a memo hit it is the modelled
  /// completion of the execution that populated the cache.
  uint64_t CompletionCycle = 0;
  /// True when the result was served from the engine's memo cache:
  /// Result is a bit-identical copy of the original execution's payload
  /// and no device time was spent (Device/BatchId/BatchSize are zero).
  bool Memoized = false;
  /// Diagnostic text for Failed responses.
  std::string Error;
};

namespace detail {
/// Shared completion slot between the engine and a Future.
struct FutureState {
  std::mutex Mutex;
  std::condition_variable Cv;
  bool Ready = false;
  Response Resp;
  std::function<void(const Response &)> Callback;
};
} // namespace detail

/// Completion handle for one submitted request. Copyable; all copies
/// observe the same response. wait() blocks until the engine resolves
/// the request (rejections resolve immediately inside submit()).
class Future {
public:
  Future() = default;

  bool valid() const { return State != nullptr; }

  /// False for a default-constructed Future (no submitted request), so
  /// polling an empty handle is safe.
  bool ready() const {
    if (!State)
      return false;
    std::lock_guard<std::mutex> Lock(State->Mutex);
    return State->Ready;
  }

  /// Blocks until the response is available and returns it. Waiting on a
  /// default-constructed Future is a caller bug: there is no engine that
  /// could ever resolve it, so the wait would deadlock — assert instead.
  const Response &wait() const {
    assert(State &&
           "serve::Future::wait() on a default-constructed Future: no "
           "request was submitted, this wait can never resolve");
    std::unique_lock<std::mutex> Lock(State->Mutex);
    State->Cv.wait(Lock, [&] { return State->Ready; });
    return State->Resp;
  }

private:
  friend class Engine;
  explicit Future(std::shared_ptr<detail::FutureState> State)
      : State(std::move(State)) {}

  std::shared_ptr<detail::FutureState> State;
};

} // namespace serve
} // namespace parrec

#endif // PARREC_SERVE_SERVE_H
