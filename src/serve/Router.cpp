//===- Router.cpp - Sharded front router over serving engines ---------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "serve/Router.h"

#include "obs/Metrics.h"
#include "runtime/CompiledRecurrence.h"

#include <algorithm>

using namespace parrec;
using namespace parrec::serve;

namespace {

/// FNV-1a over a string, for the tenant half of the routing key.
uint64_t fnv1a(const std::string &S) {
  uint64_t H = 14695981039346656037ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

} // namespace

Router::Router(Options Options) : Opts(std::move(Options)) {
  NumShards = std::max(1u, Opts.Shards);
  // One memo cache for the whole router: a repeat that spills or
  // re-routes around a draining shard must still hit.
  if (Opts.MemoCapacity)
    Memo = std::make_shared<MemoCache>(Opts.MemoCapacity);
  else if (Opts.Shard.Memo)
    Memo = Opts.Shard.Memo;
  else if (Opts.Shard.MemoCapacity)
    Memo = std::make_shared<MemoCache>(Opts.Shard.MemoCapacity);
  Opts.Shard.Memo = Memo;
  Shards_.reserve(NumShards);
  Retired.assign(NumShards, Engine::Stats{});
  for (unsigned I = 0; I != NumShards; ++I) {
    ShardSlot Slot;
    Slot.Eng = std::make_shared<Engine>(Opts.Shard);
    Slot.Live = true;
    Shards_.push_back(std::move(Slot));
  }
}

Router::~Router() { shutdown(Engine::ShutdownMode::Drain); }

bool Router::shardLive(unsigned Shard) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Shard < Shards_.size() && Shards_[Shard].Live;
}

unsigned Router::homeShard(const std::string &Tenant,
                           uint64_t KeyHash) const {
  uint64_t H = fnv1a(Tenant) ^ (KeyHash * 0x9E3779B97F4A7C15ull);
  return static_cast<unsigned>(H % NumShards);
}

Future Router::submit(Request Req,
                      std::function<void(const Response &)> Callback) {
  // The routing key mirrors the coalescer's batching key: requests that
  // could share a batch must share a shard, or sharding would defeat
  // coalescing. Computed outside the router lock — it is pure.
  uint64_t KeyHash = 0;
  if (Req.Fn) {
    DiagnosticEngine Diags;
    if (std::optional<solver::DomainBox> Box =
            Req.Fn->domainFor(Req.Args, Diags)) {
      exec::PlanKey Key = exec::PlanKey::make(
          *Box, Req.Options.UseSlidingWindow, Req.Options.KeepTable,
          Req.Options.ForcedSchedule ? &*Req.Options.ForcedSchedule
                                     : nullptr,
          Req.Options.Autotune,
          Req.Options.Evaluator == exec::EvalKind::Jit);
      KeyHash = Key.hash();
    }
    // An invalid request routes by tenant alone; the shard fails it.
  }

  std::shared_ptr<Engine> Target;
  unsigned Chosen = 0;
  const char *Outcome = "routed";
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    unsigned Home = homeShard(Req.Tenant, KeyHash);
    Chosen = Home;
    if (!Shards_[Chosen].Live) {
      // Deterministic probe to the next live shard; with every shard
      // draining, fall through to the (stopped) home shard, whose
      // submit resolves the request as QueueFull.
      for (unsigned Off = 1; Off != NumShards; ++Off) {
        unsigned C = (Home + Off) % NumShards;
        if (Shards_[C].Live) {
          Chosen = C;
          Outcome = "rerouted";
          ++ReroutedCount;
          break;
        }
      }
    } else if (Opts.SpillQueueDepth != 0 &&
               Shards_[Chosen].Eng->queueDepth() > Opts.SpillQueueDepth) {
      // Load-aware spill: shallowest live queue, lowest index on ties.
      unsigned Best = Chosen;
      size_t BestDepth = Shards_[Chosen].Eng->queueDepth();
      for (unsigned C = 0; C != NumShards; ++C) {
        if (!Shards_[C].Live || C == Chosen)
          continue;
        size_t Depth = Shards_[C].Eng->queueDepth();
        if (Depth < BestDepth || (Depth == BestDepth && C < Best)) {
          Best = C;
          BestDepth = Depth;
        }
      }
      if (Best != Chosen) {
        Chosen = Best;
        Outcome = "spilled";
        ++SpilledCount;
      }
    }
    if (Chosen == Home)
      ++RoutedCount;
    Target = Shards_[Chosen].Eng;
  }
  obs::MetricsRegistry &M = obs::MetricsRegistry::global();
  M.add("serve.router.requests",
        obs::Labels{{"shard", std::to_string(Chosen)},
                    {"outcome", Outcome}});
  // Submit outside the router lock: a rejection or memo hit runs the
  // caller's callback inline, and that callback may re-enter the router.
  return Target->submit(std::move(Req), std::move(Callback));
}

void Router::advanceTo(uint64_t Tick) {
  std::vector<std::shared_ptr<Engine>> Engines;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    LastTick = std::max(LastTick, Tick);
    Engines.reserve(Shards_.size());
    for (const ShardSlot &S : Shards_)
      Engines.push_back(S.Eng);
  }
  for (const std::shared_ptr<Engine> &E : Engines)
    E->advanceTo(Tick);
}

uint64_t Router::now() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return LastTick;
}

bool Router::drainShard(unsigned Shard) {
  std::shared_ptr<Engine> E;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Shard >= Shards_.size() || !Shards_[Shard].Live)
      return false;
    Shards_[Shard].Live = false;
    ++DrainCount;
    E = Shards_[Shard].Eng;
  }
  // Drain outside the lock: new traffic keeps flowing to the live
  // shards while this one finishes its admitted work.
  E->shutdown(Engine::ShutdownMode::Drain);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    // Fold the retiring generation's counters so router-level stats
    // survive the restart.
    accumulate(Retired[Shard], E->stats());
  }
  obs::MetricsRegistry::global().add("serve.router.drains");
  return true;
}

bool Router::readmitShard(unsigned Shard) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Shard >= Shards_.size() || Shards_[Shard].Live)
      return false;
  }
  // Build the replacement outside the lock (it spawns threads), then
  // install it and catch its clock up to the router's.
  auto Fresh = std::make_shared<Engine>(Opts.Shard);
  uint64_t Tick;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Shards_[Shard].Live)
      return false; // Raced with another readmit.
    Shards_[Shard].Eng = Fresh;
    Shards_[Shard].Live = true;
    ++ReadmitCount;
    Tick = LastTick;
  }
  Fresh->advanceTo(Tick);
  obs::MetricsRegistry::global().add("serve.router.readmits");
  return true;
}

void Router::shutdown(Engine::ShutdownMode Mode) {
  std::vector<std::shared_ptr<Engine>> Engines;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Engines.reserve(Shards_.size());
    for (const ShardSlot &S : Shards_)
      Engines.push_back(S.Eng);
  }
  for (const std::shared_ptr<Engine> &E : Engines)
    E->shutdown(Mode);
}

void Router::accumulate(Engine::Stats &Into, const Engine::Stats &From) {
  Into.Submitted += From.Submitted;
  Into.Completed += From.Completed;
  Into.Rejected += From.Rejected;
  Into.DeadlineShed += From.DeadlineShed;
  Into.Aborted += From.Aborted;
  Into.Failed += From.Failed;
  Into.Batches += From.Batches;
  Into.MaxQueueDepth = std::max(Into.MaxQueueDepth, From.MaxQueueDepth);
  Into.MemoHits += From.MemoHits;
  Into.ContinuousJoins += From.ContinuousJoins;
  auto AddVec = [](std::vector<uint64_t> &A,
                   const std::vector<uint64_t> &B) {
    if (A.size() < B.size())
      A.resize(B.size(), 0);
    for (size_t I = 0; I != B.size(); ++I)
      A[I] += B[I];
  };
  AddVec(Into.DeviceBatches, From.DeviceBatches);
  AddVec(Into.DeviceRequests, From.DeviceRequests);
  AddVec(Into.DeviceCycles, From.DeviceCycles);
}

Router::Stats Router::stats() const {
  Stats R;
  std::lock_guard<std::mutex> Lock(Mutex);
  R.PerShard.assign(NumShards, Engine::Stats{});
  for (unsigned I = 0; I != NumShards; ++I) {
    accumulate(R.PerShard[I], Retired[I]);
    // A drained shard's counters were folded into Retired; the live
    // generation's are read from the engine.
    if (Shards_[I].Live)
      accumulate(R.PerShard[I], Shards_[I].Eng->stats());
  }
  for (unsigned I = 0; I != NumShards; ++I) {
    const Engine::Stats &S = R.PerShard[I];
    R.Total.Submitted += S.Submitted;
    R.Total.Completed += S.Completed;
    R.Total.Rejected += S.Rejected;
    R.Total.DeadlineShed += S.DeadlineShed;
    R.Total.Aborted += S.Aborted;
    R.Total.Failed += S.Failed;
    R.Total.Batches += S.Batches;
    R.Total.MaxQueueDepth =
        std::max(R.Total.MaxQueueDepth, S.MaxQueueDepth);
    R.Total.MemoHits += S.MemoHits;
    R.Total.ContinuousJoins += S.ContinuousJoins;
    // Devices are per shard: concatenate, so the router-level modelled
    // makespan stays max-of-device-cycles.
    R.Total.DeviceBatches.insert(R.Total.DeviceBatches.end(),
                                 S.DeviceBatches.begin(),
                                 S.DeviceBatches.end());
    R.Total.DeviceRequests.insert(R.Total.DeviceRequests.end(),
                                  S.DeviceRequests.begin(),
                                  S.DeviceRequests.end());
    R.Total.DeviceCycles.insert(R.Total.DeviceCycles.end(),
                                S.DeviceCycles.begin(),
                                S.DeviceCycles.end());
  }
  R.Routed = RoutedCount;
  R.Spilled = SpilledCount;
  R.Rerouted = ReroutedCount;
  R.Drains = DrainCount;
  R.Readmits = ReadmitCount;
  return R;
}

size_t Router::queueDepth() const {
  std::vector<std::shared_ptr<Engine>> Engines;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const ShardSlot &S : Shards_)
      if (S.Live)
        Engines.push_back(S.Eng);
  }
  size_t Depth = 0;
  for (const std::shared_ptr<Engine> &E : Engines)
    Depth += E->queueDepth();
  return Depth;
}
