//===- AffineExpr.h - Integer affine expressions ------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer affine expressions a1*x1 + ... + an*xn + c over a fixed number
/// of dimensions. These are the common currency of the whole compiler:
/// descent functions, scheduling functions, polyhedron constraints and
/// generated loop bounds are all affine expressions.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_POLY_AFFINEEXPR_H
#define PARREC_POLY_AFFINEEXPR_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace parrec {
namespace poly {

/// An affine expression over a fixed dimension count.
///
/// The dimension count is fixed at construction; all arithmetic requires
/// both operands to agree. Coefficients and the constant are 64-bit; the
/// schedules and domains handled by the compiler are tiny, so overflow is
/// not a practical concern (asserts guard the entry points).
class AffineExpr {
public:
  AffineExpr() = default;

  /// Creates the zero expression over \p NumDims dimensions.
  explicit AffineExpr(unsigned NumDims)
      : Coefficients(NumDims, 0), Constant(0) {}

  /// Creates an expression with explicit coefficients and constant.
  AffineExpr(std::vector<int64_t> Coefficients, int64_t Constant)
      : Coefficients(std::move(Coefficients)), Constant(Constant) {}

  /// Returns the expression "x_Dim" over \p NumDims dimensions.
  static AffineExpr dim(unsigned NumDims, unsigned Dim) {
    AffineExpr E(NumDims);
    assert(Dim < NumDims && "dimension out of range");
    E.Coefficients[Dim] = 1;
    return E;
  }

  /// Returns the constant expression \p Value over \p NumDims dimensions.
  static AffineExpr constant(unsigned NumDims, int64_t Value) {
    AffineExpr E(NumDims);
    E.Constant = Value;
    return E;
  }

  unsigned numDims() const {
    return static_cast<unsigned>(Coefficients.size());
  }

  int64_t coefficient(unsigned Dim) const {
    assert(Dim < numDims() && "dimension out of range");
    return Coefficients[Dim];
  }
  void setCoefficient(unsigned Dim, int64_t Value) {
    assert(Dim < numDims() && "dimension out of range");
    Coefficients[Dim] = Value;
  }

  int64_t constantTerm() const { return Constant; }
  void setConstantTerm(int64_t Value) { Constant = Value; }

  /// True when every coefficient is zero.
  bool isConstant() const;

  /// True when the whole expression is identically zero.
  bool isZero() const { return isConstant() && Constant == 0; }

  AffineExpr operator+(const AffineExpr &Other) const;
  AffineExpr operator-(const AffineExpr &Other) const;
  AffineExpr operator*(int64_t Scale) const;
  AffineExpr operator-() const { return *this * -1; }

  AffineExpr &operator+=(const AffineExpr &Other);
  AffineExpr &operator-=(const AffineExpr &Other);

  friend bool operator==(const AffineExpr &A, const AffineExpr &B) {
    return A.Coefficients == B.Coefficients && A.Constant == B.Constant;
  }

  /// Evaluates the expression at the point \p Values (one entry per dim).
  int64_t evaluate(const std::vector<int64_t> &Values) const;
  int64_t evaluate(const int64_t *Values, size_t Count) const;

  /// Appends \p Extra zero-coefficient dimensions at position \p At.
  AffineExpr insertDims(unsigned At, unsigned Extra) const;

  /// Removes dimension \p Dim (its coefficient must be zero).
  AffineExpr removeDim(unsigned Dim) const;

  /// Substitutes dimension \p Dim with \p Replacement (which must have the
  /// same dimension count and a zero coefficient for \p Dim).
  AffineExpr substitute(unsigned Dim, const AffineExpr &Replacement) const;

  /// Renders the expression using \p DimNames, e.g. "x + 2*y - 3".
  std::string str(const std::vector<std::string> &DimNames) const;

  /// Renders with default names x0..xn-1.
  std::string str() const;

private:
  std::vector<int64_t> Coefficients;
  int64_t Constant = 0;
};

/// Greatest common divisor of non-negative integers (gcd(0, x) == x).
int64_t gcd64(int64_t A, int64_t B);

/// Integer ceiling division, correct for negative numerators.
int64_t ceilDiv(int64_t Numerator, int64_t Denominator);

/// Integer floor division, correct for negative numerators.
int64_t floorDiv(int64_t Numerator, int64_t Denominator);

} // namespace poly
} // namespace parrec

#endif // PARREC_POLY_AFFINEEXPR_H
