//===- Polyhedron.cpp - Integer polyhedra and projection -------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "poly/Polyhedron.h"

#include <algorithm>

using namespace parrec;
using namespace parrec::poly;

void Constraint::normalize() {
  int64_t G = 0;
  for (unsigned I = 0, E = Expr.numDims(); I != E; ++I)
    G = gcd64(G, Expr.coefficient(I));
  if (G == 0 || G == 1)
    return;
  for (unsigned I = 0, E = Expr.numDims(); I != E; ++I)
    Expr.setCoefficient(I, Expr.coefficient(I) / G);
  if (Kind == EQ) {
    // Only normalise an equality when the constant divides evenly;
    // otherwise the constraint is unsatisfiable and we leave it alone so
    // emptiness checks still see the contradiction.
    if (Expr.constantTerm() % G == 0)
      Expr.setConstantTerm(Expr.constantTerm() / G);
    else
      for (unsigned I = 0, E = Expr.numDims(); I != E; ++I)
        Expr.setCoefficient(I, Expr.coefficient(I) * G);
  } else {
    // a*G . x + c >= 0  <=>  a . x >= ceil(-c / G)  <=>
    // a . x + floor(c / G) >= 0 for integer points.
    Expr.setConstantTerm(floorDiv(Expr.constantTerm(), G));
  }
}

bool Constraint::isSatisfiedAt(const std::vector<int64_t> &Values) const {
  int64_t V = Expr.evaluate(Values);
  return Kind == EQ ? V == 0 : V >= 0;
}

std::string Constraint::str(const std::vector<std::string> &DimNames) const {
  return Expr.str(DimNames) + (Kind == EQ ? " == 0" : " >= 0");
}

void Polyhedron::addConstraint(Constraint C) {
  assert(C.Expr.numDims() == numDims() && "constraint dimension mismatch");
  C.normalize();
  Constraints.push_back(std::move(C));
}

void Polyhedron::addBounds(unsigned Dim, int64_t Lower, int64_t Upper) {
  AffineExpr X = AffineExpr::dim(numDims(), Dim);
  addConstraint(Constraint::ge(X - AffineExpr::constant(numDims(), Lower)));
  addConstraint(Constraint::ge(AffineExpr::constant(numDims(), Upper) - X));
}

bool Polyhedron::containsPoint(const std::vector<int64_t> &Values) const {
  for (const Constraint &C : Constraints)
    if (!C.isSatisfiedAt(Values))
      return false;
  return true;
}

void Polyhedron::simplify() {
  std::vector<Constraint> Kept;
  for (Constraint &C : Constraints) {
    C.normalize();
    if (C.Expr.isConstant()) {
      bool Holds = C.Kind == Constraint::EQ ? C.Expr.constantTerm() == 0
                                            : C.Expr.constantTerm() >= 0;
      if (Holds)
        continue; // Trivially true: drop.
      // Trivially false: keep exactly this contradiction and nothing else.
      Kept.clear();
      Kept.push_back(C);
      Constraints = std::move(Kept);
      return;
    }
    bool Duplicate = false;
    for (const Constraint &K : Kept)
      if (K.Kind == C.Kind && K.Expr == C.Expr) {
        Duplicate = true;
        break;
      }
    if (!Duplicate)
      Kept.push_back(C);
  }
  Constraints = std::move(Kept);
}

Polyhedron Polyhedron::eliminateDim(unsigned Dim) const {
  assert(Dim < numDims() && "dimension out of range");

  std::vector<std::string> NewNames = DimNames;
  NewNames.erase(NewNames.begin() + Dim);
  Polyhedron Result(std::move(NewNames));

  // Prefer Gaussian substitution through an equality that uses Dim: it is
  // exact and avoids the quadratic FM blowup.
  const Constraint *Pivot = nullptr;
  for (const Constraint &C : Constraints)
    if (C.Kind == Constraint::EQ && C.Expr.coefficient(Dim) != 0) {
      Pivot = &C;
      break;
    }

  if (Pivot) {
    int64_t P = Pivot->Expr.coefficient(Dim);
    int64_t AbsP = P < 0 ? -P : P;
    for (const Constraint &C : Constraints) {
      if (&C == Pivot)
        continue;
      int64_t A = C.Expr.coefficient(Dim);
      if (A == 0) {
        Result.addConstraint(
            Constraint(C.Expr.removeDim(Dim), C.Kind));
        continue;
      }
      // Combine so Dim cancels while keeping >= orientation: multiply the
      // constraint by |P| (positive) and subtract the right multiple of
      // the pivot equality (an equality may be scaled by any integer).
      AffineExpr Combined =
          C.Expr * AbsP - Pivot->Expr * ((P < 0 ? -1 : 1) * A);
      assert(Combined.coefficient(Dim) == 0 && "pivot failed to cancel");
      Result.addConstraint(Constraint(Combined.removeDim(Dim), C.Kind));
    }
    Result.simplify();
    return Result;
  }

  // Classic Fourier–Motzkin on the inequalities.
  std::vector<const Constraint *> Lower, Upper;
  for (const Constraint &C : Constraints) {
    int64_t A = C.Expr.coefficient(Dim);
    if (A == 0) {
      Result.addConstraint(Constraint(C.Expr.removeDim(Dim), C.Kind));
    } else if (A > 0) {
      Lower.push_back(&C); // Dim >= -rest / A.
    } else {
      Upper.push_back(&C); // Dim <= rest / -A.
    }
  }
  for (const Constraint *L : Lower)
    for (const Constraint *U : Upper) {
      int64_t LA = L->Expr.coefficient(Dim);
      int64_t UA = -U->Expr.coefficient(Dim);
      AffineExpr Combined = L->Expr * UA + U->Expr * LA;
      assert(Combined.coefficient(Dim) == 0 && "FM failed to cancel");
      Result.addConstraint(Constraint::ge(Combined.removeDim(Dim)));
    }
  Result.simplify();
  return Result;
}

bool Polyhedron::isEmpty() const {
  Polyhedron P = *this;
  P.simplify();
  while (P.numDims() > 0)
    P = P.eliminateDim(P.numDims() - 1);
  for (const Constraint &C : P.constraints()) {
    int64_t V = C.Expr.constantTerm();
    if (C.Kind == Constraint::EQ ? V != 0 : V < 0)
      return true;
  }
  return false;
}

std::optional<int64_t> Polyhedron::constantLowerBound(unsigned Dim) const {
  Polyhedron P = *this;
  // Eliminate every dimension except Dim, from the back so indices of the
  // surviving dimension stay trackable.
  unsigned Target = Dim;
  for (unsigned I = numDims(); I-- > 0;) {
    if (I == Dim)
      continue;
    P = P.eliminateDim(I);
    if (I < Target)
      --Target;
  }
  std::optional<int64_t> Best;
  for (const Constraint &C : P.constraints()) {
    int64_t A = C.Expr.coefficient(Target);
    if (C.Kind == Constraint::EQ && A != 0) {
      int64_t V = -C.Expr.constantTerm();
      if (V % A == 0)
        return V / A;
      continue;
    }
    if (A <= 0)
      continue;
    int64_t Bound = ceilDiv(-C.Expr.constantTerm(), A);
    if (!Best || Bound > *Best)
      Best = Bound;
  }
  return Best;
}

std::optional<int64_t> Polyhedron::constantUpperBound(unsigned Dim) const {
  Polyhedron P = *this;
  unsigned Target = Dim;
  for (unsigned I = numDims(); I-- > 0;) {
    if (I == Dim)
      continue;
    P = P.eliminateDim(I);
    if (I < Target)
      --Target;
  }
  std::optional<int64_t> Best;
  for (const Constraint &C : P.constraints()) {
    int64_t A = C.Expr.coefficient(Target);
    if (C.Kind == Constraint::EQ && A != 0) {
      int64_t V = -C.Expr.constantTerm();
      if (V % A == 0)
        return V / A;
      continue;
    }
    if (A >= 0)
      continue;
    int64_t Bound = floorDiv(C.Expr.constantTerm(), -A);
    if (!Best || Bound < *Best)
      Best = Bound;
  }
  return Best;
}

std::string Polyhedron::str() const {
  std::string Out;
  for (const Constraint &C : Constraints) {
    Out += C.str(DimNames);
    Out += '\n';
  }
  return Out;
}
