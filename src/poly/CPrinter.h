//===- CPrinter.h - C-source rendering of generated loops ---------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-prints generated loop nests in the style of the paper: the
/// CLooG-like sequential form of Figure 9 and the thread-partitioned
/// "parfor" form of Figure 10.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_POLY_CPRINTER_H
#define PARREC_POLY_CPRINTER_H

#include "poly/LoopGen.h"

#include <string>

namespace parrec {
namespace poly {

/// Renders the sequential scan of \p Nest with a statement macro named
/// \p StatementName — the form CLooG emits (Figure 9):
/// \code
///   for (p=0;p<=m+n;p++) {
///     for (i=max(0,p-m);i<=min(n,p);i++) {
///       S1(i,p-i);
///     }
///   }
/// \endcode
std::string printSequentialLoops(const LoopNest &Nest,
                                 const std::string &StatementName = "S1");

/// Renders the thread-partitioned conversion of Figure 10: the outermost
/// space loop is striped across \p ThreadCountName threads, elements are
/// stored into \p ArrayName, and a sync closes each partition.
std::string printParallelLoops(const LoopNest &Nest,
                               const std::string &FunctionName = "f",
                               const std::string &ArrayName = "farr",
                               const std::string &ThreadVarName = "t",
                               const std::string &ThreadCountName = "tn");

} // namespace poly
} // namespace parrec

#endif // PARREC_POLY_CPRINTER_H
