//===- LoopGen.h - Polyhedral loop-nest generation ----------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CLooG-style code generation (Section 4.3): given a recursion's domain
/// polyhedron and an affine scheduling (scattering) function, produce a
/// loop nest whose outer loop runs over partition time-steps and whose
/// inner loops enumerate the elements of each partition — Figure 9 of the
/// paper — plus the thread-partitioned conversion of Figure 10.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_POLY_LOOPGEN_H
#define PARREC_POLY_LOOPGEN_H

#include "poly/Polyhedron.h"

#include <cassert>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace parrec {
namespace poly {

/// Precomputed per-scan state for LoopNest::forEachPointForThread: the
/// reusable Env scratch vector plus the time range and striped level,
/// which depend only on the nest and the parameter values — not on the
/// partition or thread — and were historically re-derived (and the Env
/// heap-allocated) for every (partition x thread) pair of a scan. Build
/// one with LoopNest::makeScanContext and reuse it across the whole
/// scan; each host worker of a parallel scan owns its own context.
struct ScanContext {
  std::vector<int64_t> Env;
  std::optional<std::pair<int64_t, int64_t>> Range;
  std::optional<unsigned> StripedLevel;
};

/// One affine bound "value (>=|<=) ceil|floor(Numerator / Divisor)" where
/// Numerator only mentions parameters and outer loop variables.
struct LoopBound {
  AffineExpr Numerator; // Over the full nest dimension space.
  int64_t Divisor = 1;  // Always positive.
};

/// One level of the generated nest: either a genuine loop with max-of-
/// lower / min-of-upper bounds, or a variable fixed by an equality of the
/// scattered polyhedron (e.g. the reconstructed x1 = p - x0 of Figure 9).
struct LoopLevel {
  std::string Name;

  /// Loop form: iterate from max(Lower) to min(Upper).
  std::vector<LoopBound> Lower;
  std::vector<LoopBound> Upper;

  /// Fixed form: value = FixedNumerator / FixedDivisor; iterations where
  /// the division is inexact are skipped (divisibility guard).
  std::optional<AffineExpr> FixedNumerator;
  int64_t FixedDivisor = 1;

  bool isFixed() const { return FixedNumerator.has_value(); }
};

/// A generated loop nest over dimensions
/// [parameters..., t (time/partition), x0..xn-1 (original recursion dims)].
///
/// The nest can be executed directly (the simulator interprets it) and can
/// be pretty-printed as C (see CPrinter.h), reproducing Figures 9 and 10.
class LoopNest {
public:
  unsigned NumParams = 0;
  unsigned NumRecursionDims = 0;
  std::vector<std::string> NestDimNames; // params, t, x dims.
  std::vector<LoopLevel> Levels;         // Size 1 + NumRecursionDims.

  /// Index (into Levels) of the outermost non-fixed *space* loop, the one
  /// Figure 10 stripes across threads. Level 0 is the time loop, so this
  /// is >= 1 when present.
  std::optional<unsigned> threadedLevel() const;

  /// Inclusive time-step range for the given parameter values; nullopt if
  /// the domain is empty.
  std::optional<std::pair<int64_t, int64_t>>
  timeRange(const std::vector<int64_t> &ParamValues) const;

  /// Invokes \p Body with each recursion-space point (x0..xn-1) of
  /// partition \p TimeStep, in lexicographic nest order.
  void forEachPoint(const std::vector<int64_t> &ParamValues, int64_t TimeStep,
                    const std::function<void(const int64_t *)> &Body) const;

  /// Builds the reusable scan state for \p ParamValues: sized Env
  /// scratch, memoised time range and striped level. One context serves
  /// any number of forEachPointForThread calls over the same parameters.
  ScanContext makeScanContext(const std::vector<int64_t> &ParamValues) const;

  /// Like forEachPoint but enumerates only the slice assigned to
  /// \p ThreadId when the outermost space loop is striped across
  /// \p NumThreads threads (the conversion of Figure 10). When the nest
  /// has no space loop, thread 0 receives every point.
  ///
  /// The ScanContext template is the real implementation: hot paths
  /// reuse a precomputed context and a concrete callable, paying neither
  /// a heap allocation nor a bounds re-derivation nor a type-erased call
  /// per (partition x thread). \p Ctx must come from makeScanContext on
  /// this nest; its Env is scratch, mutated during the walk.
  template <typename BodyT>
  void forEachPointForThread(ScanContext &Ctx, int64_t TimeStep,
                             unsigned ThreadId, unsigned NumThreads,
                             const BodyT &Body) const {
    assert(NumThreads > 0 && ThreadId < NumThreads && "bad thread mapping");
    assert(Ctx.Env.size() == NestDimNames.size() && "foreign scan context");
    // Confirm TimeStep lies within the partition range; Figure 8's
    // template iterates the range, so out-of-range steps simply contain
    // no work.
    if (!Ctx.Range || TimeStep < Ctx.Range->first ||
        TimeStep > Ctx.Range->second)
      return;
    Ctx.Env[NumParams] = TimeStep;

    std::optional<unsigned> Striped;
    if (NumThreads > 1) {
      Striped = Ctx.StripedLevel;
      if (!Striped && ThreadId != 0)
        return; // No space loop: all the work belongs to thread 0.
    }
    walk(Ctx.Env, 1, Striped, ThreadId, NumThreads, Body);
  }

  /// Convenience overload building a throwaway context per call.
  template <typename BodyT>
  void forEachPointForThread(const std::vector<int64_t> &ParamValues,
                             int64_t TimeStep, unsigned ThreadId,
                             unsigned NumThreads, const BodyT &Body) const {
    ScanContext Ctx = makeScanContext(ParamValues);
    forEachPointForThread(Ctx, TimeStep, ThreadId, NumThreads, Body);
  }

  void forEachPointForThread(
      const std::vector<int64_t> &ParamValues, int64_t TimeStep,
      unsigned ThreadId, unsigned NumThreads,
      const std::function<void(const int64_t *)> &Body) const;

  /// Number of points in partition \p TimeStep.
  uint64_t countPoints(const std::vector<int64_t> &ParamValues,
                       int64_t TimeStep) const;

private:
  /// Evaluates the max of the ceil-divided lower bounds at \p Env;
  /// nullopt when there is no lower bound (unbounded).
  static std::optional<int64_t> evalLower(const LoopLevel &Level,
                                          const std::vector<int64_t> &Env) {
    std::optional<int64_t> Best;
    for (const LoopBound &B : Level.Lower) {
      int64_t V = ceilDiv(B.Numerator.evaluate(Env), B.Divisor);
      if (!Best || V > *Best)
        Best = V;
    }
    return Best;
  }

  static std::optional<int64_t> evalUpper(const LoopLevel &Level,
                                          const std::vector<int64_t> &Env) {
    std::optional<int64_t> Best;
    for (const LoopBound &B : Level.Upper) {
      int64_t V = floorDiv(B.Numerator.evaluate(Env), B.Divisor);
      if (!Best || V < *Best)
        Best = V;
    }
    return Best;
  }

  template <typename BodyT>
  void walk(std::vector<int64_t> &Env, unsigned Level,
            std::optional<unsigned> StripedLevel, unsigned ThreadId,
            unsigned NumThreads, const BodyT &Body) const {
    if (Level == Levels.size()) {
      Body(Env.data() + NumParams + 1); // x values follow params and t.
      return;
    }
    const LoopLevel &L = Levels[Level];
    unsigned EnvIndex = NumParams + Level;
    if (L.isFixed()) {
      int64_t Num = L.FixedNumerator->evaluate(Env);
      if (Num % L.FixedDivisor != 0)
        return; // Divisibility guard: no integer point here.
      Env[EnvIndex] = Num / L.FixedDivisor;
      walk(Env, Level + 1, StripedLevel, ThreadId, NumThreads, Body);
      return;
    }
    std::optional<int64_t> Lo = evalLower(L, Env);
    std::optional<int64_t> Hi = evalUpper(L, Env);
    assert(Lo && Hi && "generated loops must be bounded");
    int64_t Start = *Lo;
    int64_t Step = 1;
    if (StripedLevel && Level == *StripedLevel) {
      Start += ThreadId;
      Step = NumThreads;
    }
    for (int64_t V = Start; V <= *Hi; V += Step) {
      Env[EnvIndex] = V;
      walk(Env, Level + 1, StripedLevel, ThreadId, NumThreads, Body);
    }
  }
};

/// Builds the loop nest for \p Domain scanned under schedule \p Schedule.
///
/// \p Domain ranges over [params..., x0..xn-1] with \p NumParams leading
/// parameter dimensions. \p Schedule is an affine expression over the same
/// dimension space (its parameter coefficients are usually zero). The
/// generated nest scans, for each value of t = Schedule(x), exactly the
/// integer points of the domain in that partition.
LoopNest generateLoops(const Polyhedron &Domain, unsigned NumParams,
                       const AffineExpr &Schedule,
                       const std::string &TimeName = "p");

} // namespace poly
} // namespace parrec

#endif // PARREC_POLY_LOOPGEN_H
