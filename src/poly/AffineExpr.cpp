//===- AffineExpr.cpp - Integer affine expressions -------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "poly/AffineExpr.h"

#include "support/StringUtils.h"

using namespace parrec;
using namespace parrec::poly;

bool AffineExpr::isConstant() const {
  for (int64_t C : Coefficients)
    if (C != 0)
      return false;
  return true;
}

AffineExpr AffineExpr::operator+(const AffineExpr &Other) const {
  AffineExpr Result = *this;
  Result += Other;
  return Result;
}

AffineExpr AffineExpr::operator-(const AffineExpr &Other) const {
  AffineExpr Result = *this;
  Result -= Other;
  return Result;
}

AffineExpr AffineExpr::operator*(int64_t Scale) const {
  AffineExpr Result = *this;
  for (int64_t &C : Result.Coefficients)
    C *= Scale;
  Result.Constant *= Scale;
  return Result;
}

AffineExpr &AffineExpr::operator+=(const AffineExpr &Other) {
  assert(numDims() == Other.numDims() && "dimension mismatch");
  for (unsigned I = 0, E = numDims(); I != E; ++I)
    Coefficients[I] += Other.Coefficients[I];
  Constant += Other.Constant;
  return *this;
}

AffineExpr &AffineExpr::operator-=(const AffineExpr &Other) {
  assert(numDims() == Other.numDims() && "dimension mismatch");
  for (unsigned I = 0, E = numDims(); I != E; ++I)
    Coefficients[I] -= Other.Coefficients[I];
  Constant -= Other.Constant;
  return *this;
}

int64_t AffineExpr::evaluate(const std::vector<int64_t> &Values) const {
  return evaluate(Values.data(), Values.size());
}

int64_t AffineExpr::evaluate(const int64_t *Values, size_t Count) const {
  assert(Count >= numDims() && "too few values for evaluation");
  (void)Count;
  int64_t Sum = Constant;
  for (unsigned I = 0, E = numDims(); I != E; ++I)
    Sum += Coefficients[I] * Values[I];
  return Sum;
}

AffineExpr AffineExpr::insertDims(unsigned At, unsigned Extra) const {
  assert(At <= numDims() && "insertion point out of range");
  AffineExpr Result;
  Result.Coefficients.reserve(numDims() + Extra);
  Result.Coefficients.assign(Coefficients.begin(), Coefficients.begin() + At);
  Result.Coefficients.insert(Result.Coefficients.end(), Extra, 0);
  Result.Coefficients.insert(Result.Coefficients.end(),
                             Coefficients.begin() + At, Coefficients.end());
  Result.Constant = Constant;
  return Result;
}

AffineExpr AffineExpr::removeDim(unsigned Dim) const {
  assert(Dim < numDims() && "dimension out of range");
  assert(Coefficients[Dim] == 0 && "removing a used dimension");
  AffineExpr Result;
  Result.Coefficients = Coefficients;
  Result.Coefficients.erase(Result.Coefficients.begin() + Dim);
  Result.Constant = Constant;
  return Result;
}

AffineExpr AffineExpr::substitute(unsigned Dim,
                                  const AffineExpr &Replacement) const {
  assert(Replacement.numDims() == numDims() && "dimension mismatch");
  assert(Replacement.coefficient(Dim) == 0 &&
         "replacement must not mention the substituted dimension");
  AffineExpr Result = *this;
  int64_t Coefficient = Result.Coefficients[Dim];
  Result.Coefficients[Dim] = 0;
  Result += Replacement * Coefficient;
  return Result;
}

std::string AffineExpr::str(const std::vector<std::string> &DimNames) const {
  std::string Out;
  bool First = true;
  for (unsigned I = 0, E = numDims(); I != E; ++I) {
    std::string Fallback;
    std::string_view Name;
    if (I < DimNames.size()) {
      Name = DimNames[I];
    } else {
      Fallback = "x" + std::to_string(I);
      Name = Fallback;
    }
    appendAffineTerm(Out, Coefficients[I], Name, First);
  }
  if (First)
    return std::to_string(Constant);
  if (Constant > 0)
    Out += " + " + std::to_string(Constant);
  else if (Constant < 0)
    Out += " - " + std::to_string(-Constant);
  return Out;
}

std::string AffineExpr::str() const { return str({}); }

int64_t parrec::poly::gcd64(int64_t A, int64_t B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

int64_t parrec::poly::ceilDiv(int64_t Numerator, int64_t Denominator) {
  assert(Denominator > 0 && "ceilDiv requires a positive denominator");
  int64_t Quotient = Numerator / Denominator;
  if (Numerator % Denominator != 0 && Numerator > 0)
    ++Quotient;
  return Quotient;
}

int64_t parrec::poly::floorDiv(int64_t Numerator, int64_t Denominator) {
  assert(Denominator > 0 && "floorDiv requires a positive denominator");
  int64_t Quotient = Numerator / Denominator;
  if (Numerator % Denominator != 0 && Numerator < 0)
    --Quotient;
  return Quotient;
}
