//===- LoopGen.cpp - Polyhedral loop-nest generation -----------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "poly/LoopGen.h"

using namespace parrec;
using namespace parrec::poly;

std::optional<unsigned> LoopNest::threadedLevel() const {
  for (unsigned L = 1; L < Levels.size(); ++L)
    if (!Levels[L].isFixed())
      return L;
  return std::nullopt;
}

std::optional<std::pair<int64_t, int64_t>>
LoopNest::timeRange(const std::vector<int64_t> &ParamValues) const {
  assert(ParamValues.size() == NumParams && "wrong parameter count");
  std::vector<int64_t> Env(NestDimNames.size(), 0);
  for (unsigned I = 0; I != NumParams; ++I)
    Env[I] = ParamValues[I];

  const LoopLevel &Time = Levels[0];
  if (Time.isFixed()) {
    int64_t Num = Time.FixedNumerator->evaluate(Env);
    if (Num % Time.FixedDivisor != 0)
      return std::nullopt;
    int64_t V = Num / Time.FixedDivisor;
    return std::make_pair(V, V);
  }
  std::optional<int64_t> Lo = evalLower(Time, Env);
  std::optional<int64_t> Hi = evalUpper(Time, Env);
  if (!Lo || !Hi || *Lo > *Hi)
    return std::nullopt;
  return std::make_pair(*Lo, *Hi);
}

ScanContext LoopNest::makeScanContext(
    const std::vector<int64_t> &ParamValues) const {
  assert(ParamValues.size() == NumParams && "wrong parameter count");
  ScanContext Ctx;
  Ctx.Env.assign(NestDimNames.size(), 0);
  for (unsigned I = 0; I != NumParams; ++I)
    Ctx.Env[I] = ParamValues[I];
  Ctx.Range = timeRange(ParamValues);
  Ctx.StripedLevel = threadedLevel();
  return Ctx;
}

void LoopNest::forEachPoint(
    const std::vector<int64_t> &ParamValues, int64_t TimeStep,
    const std::function<void(const int64_t *)> &Body) const {
  forEachPointForThread(ParamValues, TimeStep, 0, 1, Body);
}

void LoopNest::forEachPointForThread(
    const std::vector<int64_t> &ParamValues, int64_t TimeStep,
    unsigned ThreadId, unsigned NumThreads,
    const std::function<void(const int64_t *)> &Body) const {
  forEachPointForThread<std::function<void(const int64_t *)>>(
      ParamValues, TimeStep, ThreadId, NumThreads, Body);
}

uint64_t LoopNest::countPoints(const std::vector<int64_t> &ParamValues,
                               int64_t TimeStep) const {
  uint64_t Count = 0;
  forEachPoint(ParamValues, TimeStep, [&](const int64_t *) { ++Count; });
  return Count;
}

LoopNest parrec::poly::generateLoops(const Polyhedron &Domain,
                                     unsigned NumParams,
                                     const AffineExpr &Schedule,
                                     const std::string &TimeName) {
  // Instrumented by the "loopgen" pass wrapper (compiler/).
  unsigned DomDims = Domain.numDims();
  assert(NumParams < DomDims && "domain must have recursion dimensions");
  assert(Schedule.numDims() == DomDims && "schedule dimension mismatch");
  unsigned NumRec = DomDims - NumParams;
  unsigned NestDims = DomDims + 1; // params, t, x0..xn-1.
  unsigned TimeDim = NumParams;

  // Assemble the scattered polyhedron over [params, t, x...].
  std::vector<std::string> NestNames;
  NestNames.reserve(NestDims);
  for (unsigned I = 0; I != NumParams; ++I)
    NestNames.push_back(Domain.dimNames()[I]);
  NestNames.push_back(TimeName);
  for (unsigned I = NumParams; I != DomDims; ++I)
    NestNames.push_back(Domain.dimNames()[I]);

  Polyhedron Scattered(NestNames);
  for (const Constraint &C : Domain.constraints())
    Scattered.addConstraint(
        Constraint(C.Expr.insertDims(TimeDim, 1), C.Kind));
  // t - Schedule(x) == 0.
  AffineExpr TimeEq = AffineExpr::dim(NestDims, TimeDim) -
                      Schedule.insertDims(TimeDim, 1);
  Scattered.addConstraint(Constraint::eq(TimeEq));

  // Project from the innermost level outwards: Proj[L] constrains the
  // variable of level L in terms of parameters and outer levels.
  unsigned NumLevels = 1 + NumRec;
  std::vector<Polyhedron> Proj(NumLevels);
  Proj[NumLevels - 1] = Scattered;
  for (unsigned L = NumLevels - 1; L > 0; --L)
    Proj[L - 1] = Proj[L].eliminateDim(Proj[L].numDims() - 1);

  LoopNest Nest;
  Nest.NumParams = NumParams;
  Nest.NumRecursionDims = NumRec;
  Nest.NestDimNames = NestNames;
  Nest.Levels.resize(NumLevels);

  for (unsigned L = 0; L != NumLevels; ++L) {
    LoopLevel &Level = Nest.Levels[L];
    unsigned Dim = NumParams + L; // Level variable within Proj[L].
    Level.Name = NestNames[Dim];

    // Prefer defining the variable through an equality: this is what
    // reconstructs the eliminated recursion dimension from the time-step
    // (Figure 9's S1(i, p-i)).
    const Constraint *Pivot = nullptr;
    for (const Constraint &C : Proj[L].constraints())
      if (C.Kind == Constraint::EQ && C.Expr.coefficient(Dim) != 0) {
        Pivot = &C;
        break;
      }
    if (Pivot) {
      int64_t A = Pivot->Expr.coefficient(Dim);
      // A * v + rest == 0  =>  v = -rest / A; keep the divisor positive.
      AffineExpr Rest = Pivot->Expr;
      Rest.setCoefficient(Dim, 0);
      if (A > 0) {
        Level.FixedNumerator = -Rest;
        Level.FixedDivisor = A;
      } else {
        Level.FixedNumerator = Rest;
        Level.FixedDivisor = -A;
      }
      // Pad back to the full nest dimensionality.
      unsigned Missing = NestDims - Proj[L].numDims();
      if (Missing)
        Level.FixedNumerator =
            Level.FixedNumerator->insertDims(Proj[L].numDims(), Missing);
      continue;
    }

    for (const Constraint &C : Proj[L].constraints()) {
      int64_t A = C.Expr.coefficient(Dim);
      if (A == 0)
        continue;
      AffineExpr Rest = C.Expr;
      Rest.setCoefficient(Dim, 0);
      unsigned Missing = NestDims - Proj[L].numDims();
      if (A > 0) {
        // A*v + rest >= 0  =>  v >= ceil(-rest / A).
        AffineExpr Num = -Rest;
        if (Missing)
          Num = Num.insertDims(Proj[L].numDims(), Missing);
        Level.Lower.push_back({Num, A});
      } else {
        // A*v + rest >= 0  =>  v <= floor(rest / -A).
        AffineExpr Num = Rest;
        if (Missing)
          Num = Num.insertDims(Proj[L].numDims(), Missing);
        Level.Upper.push_back({Num, -A});
      }
    }
  }
  return Nest;
}
