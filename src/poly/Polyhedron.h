//===- Polyhedron.h - Integer polyhedra and projection ------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convex integer polyhedra represented as conjunctions of affine
/// constraints, plus the Fourier–Motzkin projection that underpins the
/// CLooG-style loop generator (Section 4.3 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_POLY_POLYHEDRON_H
#define PARREC_POLY_POLYHEDRON_H

#include "poly/AffineExpr.h"

#include <optional>
#include <string>
#include <vector>

namespace parrec {
namespace poly {

/// One affine constraint: Expr >= 0 or Expr == 0.
struct Constraint {
  enum KindType { GE, EQ };

  AffineExpr Expr;
  KindType Kind = GE;

  Constraint() = default;
  Constraint(AffineExpr Expr, KindType Kind)
      : Expr(std::move(Expr)), Kind(Kind) {}

  static Constraint ge(AffineExpr Expr) {
    return Constraint(std::move(Expr), GE);
  }
  static Constraint eq(AffineExpr Expr) {
    return Constraint(std::move(Expr), EQ);
  }

  /// Divides out the gcd of the coefficients. For >= constraints the
  /// constant is tightened with an integer floor, which is exact for
  /// integer points.
  void normalize();

  /// True at the integer point \p Values.
  bool isSatisfiedAt(const std::vector<int64_t> &Values) const;

  std::string str(const std::vector<std::string> &DimNames) const;
};

/// A conjunction of affine constraints over named dimensions.
///
/// Projection uses Gaussian substitution for equalities and classic
/// Fourier–Motzkin for inequalities. Over the box-plus-diagonal domains
/// the compiler builds, FM is exact for the loop-bound queries we make
/// (tests cross-check generated loops against brute-force enumeration).
class Polyhedron {
public:
  Polyhedron() = default;
  explicit Polyhedron(std::vector<std::string> DimNames)
      : DimNames(std::move(DimNames)) {}

  unsigned numDims() const {
    return static_cast<unsigned>(DimNames.size());
  }
  const std::vector<std::string> &dimNames() const { return DimNames; }

  const std::vector<Constraint> &constraints() const { return Constraints; }

  void addConstraint(Constraint C);

  /// Adds Lower <= x_Dim <= Upper.
  void addBounds(unsigned Dim, int64_t Lower, int64_t Upper);

  /// True at the integer point \p Values.
  bool containsPoint(const std::vector<int64_t> &Values) const;

  /// Projects away dimension \p Dim. The result has one fewer dimension;
  /// dimensions after \p Dim shift down by one.
  Polyhedron eliminateDim(unsigned Dim) const;

  /// True when no rational point satisfies the constraints (a sound
  /// emptiness test; never claims empty when integer points exist in the
  /// domains the compiler builds).
  bool isEmpty() const;

  /// Computes constant bounds of dimension \p Dim over the whole
  /// polyhedron by eliminating every other dimension. Returns nullopt for
  /// an unbounded direction.
  std::optional<int64_t> constantLowerBound(unsigned Dim) const;
  std::optional<int64_t> constantUpperBound(unsigned Dim) const;

  /// Renders each constraint on its own line.
  std::string str() const;

private:
  std::vector<std::string> DimNames;
  std::vector<Constraint> Constraints;

  /// Removes duplicate and trivially-true constraints.
  void simplify();
};

} // namespace poly
} // namespace parrec

#endif // PARREC_POLY_POLYHEDRON_H
