//===- CPrinter.cpp - C-source rendering of generated loops ----------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "poly/CPrinter.h"

using namespace parrec;
using namespace parrec::poly;

namespace {

std::string boundToString(const LoopBound &Bound,
                          const std::vector<std::string> &Names,
                          bool IsLower) {
  std::string Expr = Bound.Numerator.str(Names);
  if (Bound.Divisor == 1)
    return Expr;
  return std::string(IsLower ? "ceild(" : "floord(") + Expr + "," +
         std::to_string(Bound.Divisor) + ")";
}

std::string boundListToString(const std::vector<LoopBound> &Bounds,
                              const std::vector<std::string> &Names,
                              bool IsLower) {
  assert(!Bounds.empty() && "loop must be bounded");
  if (Bounds.size() == 1)
    return boundToString(Bounds[0], Names, IsLower);
  std::string Out = IsLower ? "max(" : "min(";
  for (size_t I = 0; I != Bounds.size(); ++I) {
    if (I)
      Out += ",";
    Out += boundToString(Bounds[I], Names, IsLower);
  }
  Out += ")";
  return Out;
}

std::string levelValueToString(const LoopLevel &Level,
                               const std::vector<std::string> &Names) {
  if (!Level.isFixed())
    return Level.Name;
  std::string Expr = Level.FixedNumerator->str(Names);
  if (Level.FixedDivisor == 1)
    return Expr;
  return "(" + Expr + ")/" + std::to_string(Level.FixedDivisor);
}

void indent(std::string &Out, unsigned Depth) {
  Out.append(2 * Depth, ' ');
}

std::string statementArgs(const LoopNest &Nest) {
  std::string Args;
  for (unsigned L = 1; L < Nest.Levels.size(); ++L) {
    if (L > 1)
      Args += ",";
    std::string V = levelValueToString(Nest.Levels[L], Nest.NestDimNames);
    // Parenthesise compound expressions for readability, matching the
    // paper's "S1(i,p-i)" output style for simple ones.
    Args += V;
  }
  return Args;
}

} // namespace

std::string poly::printSequentialLoops(const LoopNest &Nest,
                                       const std::string &StatementName) {
  std::string Out;
  unsigned Depth = 0;
  const std::vector<std::string> &Names = Nest.NestDimNames;
  std::vector<unsigned> OpenLoops;

  for (unsigned L = 0; L < Nest.Levels.size(); ++L) {
    const LoopLevel &Level = Nest.Levels[L];
    if (Level.isFixed())
      continue; // Fixed levels appear only inside the statement arguments.
    indent(Out, Depth);
    Out += "for (" + Level.Name + "=" +
           boundListToString(Level.Lower, Names, /*IsLower=*/true) + ";" +
           Level.Name + "<=" +
           boundListToString(Level.Upper, Names, /*IsLower=*/false) + ";" +
           Level.Name + "++) {\n";
    ++Depth;
    OpenLoops.push_back(L);
  }

  indent(Out, Depth);
  Out += StatementName + "(" + statementArgs(Nest) + ");\n";

  while (!OpenLoops.empty()) {
    --Depth;
    indent(Out, Depth);
    Out += "}\n";
    OpenLoops.pop_back();
  }
  return Out;
}

std::string poly::printParallelLoops(const LoopNest &Nest,
                                     const std::string &FunctionName,
                                     const std::string &ArrayName,
                                     const std::string &ThreadVarName,
                                     const std::string &ThreadCountName) {
  std::string Out;
  const std::vector<std::string> &Names = Nest.NestDimNames;
  std::optional<unsigned> Striped = Nest.threadedLevel();

  Out += "parfor threads " + ThreadVarName + " in 0.." + ThreadCountName +
         " {\n";
  unsigned Depth = 1;

  // Time loop.
  const LoopLevel &Time = Nest.Levels[0];
  indent(Out, Depth);
  Out += "for (" + Time.Name + "=" +
         boundListToString(Time.Lower, Names, true) + ";" + Time.Name +
         "<=" + boundListToString(Time.Upper, Names, false) + ";" +
         Time.Name + "++) {\n";
  ++Depth;

  std::vector<unsigned> OpenLoops;
  for (unsigned L = 1; L < Nest.Levels.size(); ++L) {
    const LoopLevel &Level = Nest.Levels[L];
    if (Level.isFixed())
      continue;
    bool IsStriped = Striped && L == *Striped;
    indent(Out, Depth);
    std::string Lower = boundListToString(Level.Lower, Names, true);
    if (IsStriped)
      Lower = ThreadVarName + "+" + Lower;
    std::string Step =
        IsStriped ? Level.Name + "+=" + ThreadCountName : Level.Name + "++";
    Out += "for (" + Level.Name + "=" + Lower + ";" + Level.Name + "<=" +
           boundListToString(Level.Upper, Names, false) + ";" + Step +
           ") {\n";
    ++Depth;
    OpenLoops.push_back(L);
  }

  // Statement: recover the original recursion coordinates and tabulate.
  std::string Coords;
  std::string Values;
  for (unsigned L = 1; L < Nest.Levels.size(); ++L) {
    if (L > 1) {
      Coords += ",";
      Values += ", ";
    }
    Coords += "x" + std::to_string(L - 1);
    std::string V = levelValueToString(Nest.Levels[L], Names);
    if (Nest.Levels[L].isFixed())
      V = "(" + V + ")";
    Values += V;
  }
  indent(Out, Depth);
  Out += Coords + " = " + Values + ";\n";
  indent(Out, Depth);
  Out += ArrayName + "[" + Coords + "] = " + FunctionName + "(" + Coords +
         ");\n";

  while (!OpenLoops.empty()) {
    --Depth;
    indent(Out, Depth);
    Out += "}\n";
    OpenLoops.pop_back();
  }
  indent(Out, Depth);
  Out += "sync\n";
  --Depth;
  indent(Out, Depth);
  Out += "}\n";
  Out += "}\n";
  return Out;
}
