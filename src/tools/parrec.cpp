//===- parrec.cpp - The ParRec command-line driver ----------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler driver:
///   parrec run <script.rdsl>         execute a script on the simulator
///   parrec run --cpu <script.rdsl>   execute with the modelled CPU
///   parrec check <fn.rdsl>           parse + analyse one function
///   parrec schedule <fn.rdsl> n1 n2  print the minimal schedule for a box
///   parrec emit <fn.rdsl> [n1 n2..]  print the synthesized CUDA source
///   parrec loops <fn.rdsl> n1 n2     print the Figure 9/10 loop nests
///
/// `run` observability flags:
///   --trace-out=<file>   trace the pipeline and write Chrome trace-event
///                        JSON (open in Perfetto / chrome://tracing)
///   --trace-tree         print the span tree to stderr after the run
///   --stats[=json]       print the metrics registry to stderr
///   --stats-out=<file>   write the metrics registry snapshot JSON
///
/// `emit` and `loops` accept `--schedule a1,a2,...` to use a
/// user-provided scheduling function instead of the derived one; it is
/// verified against the dependency criteria first (Section 4.5).
///
//===----------------------------------------------------------------------===//

#include "codegen/CudaEmitter.h"
#include "lang/Parser.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "poly/CPrinter.h"
#include "runtime/Interpreter.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace parrec;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: parrec <command> [options] <file> [extents...]\n"
               "commands:\n"
               "  run [--cpu] [--scan-workers=<n>] [--trace-out=<f>]\n"
               "      [--trace-tree] [--stats[=json]] [--stats-out=<f>]\n"
               "      <script>           execute a script\n"
               "                         (--scan-workers: host threads per\n"
               "                         partition scan; 0 auto, 1 serial —\n"
               "                         results are identical either way)\n"
               "  check <function>       analyse a single function\n"
               "  schedule <fn> <n...>   derive the minimal schedule\n"
               "  emit <fn>              print synthesized CUDA source\n"
               "  loops <fn> <n...>      print generated loop nests\n");
  return 2;
}

std::optional<std::string> readFile(const char *Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

struct AnalyzedFunction {
  std::unique_ptr<lang::FunctionDecl> Decl;
  std::optional<lang::FunctionInfo> Info;
};

std::optional<AnalyzedFunction> analyzeFile(const char *Path,
                                            DiagnosticEngine &Diags) {
  std::optional<std::string> Source = readFile(Path);
  if (!Source) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path);
    return std::nullopt;
  }
  AnalyzedFunction Result;
  lang::Parser P(*Source, Diags);
  Result.Decl = P.parseFunctionOnly();
  if (!Result.Decl)
    return std::nullopt;
  lang::Sema S(Diags, {"dna", "rna", "protein", "en"});
  Result.Info = S.analyze(*Result.Decl);
  if (!Result.Info)
    return std::nullopt;
  return Result;
}

/// Parses a --schedule a1,a2,... option if present at Argv[*Index],
/// advancing *Index past it. Returns nullopt when absent; exits with an
/// error message on malformed input.
std::optional<solver::Schedule> parseScheduleOption(int Argc, char **Argv,
                                                    int *Index) {
  if (*Index + 1 >= Argc ||
      std::strcmp(Argv[*Index], "--schedule") != 0)
    return std::nullopt;
  solver::Schedule S;
  for (const std::string &Piece :
       splitString(Argv[*Index + 1], ','))
    S.Coefficients.push_back(std::atoll(Piece.c_str()));
  *Index += 2;
  return S;
}

std::optional<solver::DomainBox> boxFromArgs(int Argc, char **Argv,
                                             int First, unsigned Dims) {
  if (Argc - First != static_cast<int>(Dims)) {
    std::fprintf(stderr,
                 "error: expected %u domain extents, got %d\n", Dims,
                 Argc - First);
    return std::nullopt;
  }
  std::vector<int64_t> Extents;
  for (int I = First; I != Argc; ++I)
    Extents.push_back(std::atoll(Argv[I]));
  for (int64_t E : Extents)
    if (E <= 0) {
      std::fprintf(stderr, "error: extents must be positive\n");
      return std::nullopt;
    }
  return solver::DomainBox::fromExtents(Extents);
}

/// Returns the value of a `--name=value` option, or null when \p Arg is
/// not that option.
const char *optionValue(const char *Arg, const char *Name) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(Arg, Name, Len) != 0 || Arg[Len] != '=')
    return nullptr;
  return Arg + Len + 1;
}

int cmdRun(int Argc, char **Argv) {
  bool UseCpu = false;
  bool StatsHuman = false, StatsJson = false, TraceTree = false;
  unsigned ScanWorkers = 0;
  std::string TraceOut, StatsOut;
  int FileIndex = 2;
  for (; FileIndex < Argc && Argv[FileIndex][0] == '-'; ++FileIndex) {
    const char *Arg = Argv[FileIndex];
    const char *Value;
    if (std::strcmp(Arg, "--cpu") == 0)
      UseCpu = true;
    else if ((Value = optionValue(Arg, "--scan-workers")))
      ScanWorkers = static_cast<unsigned>(std::atoi(Value));
    else if ((Value = optionValue(Arg, "--trace-out")))
      TraceOut = Value;
    else if (std::strcmp(Arg, "--trace-tree") == 0)
      TraceTree = true;
    else if (std::strcmp(Arg, "--stats") == 0)
      StatsHuman = true;
    else if (std::strcmp(Arg, "--stats=json") == 0)
      StatsJson = true;
    else if ((Value = optionValue(Arg, "--stats-out")))
      StatsOut = Value;
    else {
      std::fprintf(stderr, "error: unknown run option '%s'\n", Arg);
      return usage();
    }
  }
  if (FileIndex >= Argc)
    return usage();
  if (!TraceOut.empty() || TraceTree)
    obs::Tracer::instance().enable();
  std::optional<std::string> Source = readFile(Argv[FileIndex]);
  if (!Source) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Argv[FileIndex]);
    return 1;
  }
  // Loads resolve relative to the script's directory.
  std::string Dir = Argv[FileIndex];
  size_t Slash = Dir.rfind('/');
  Dir = Slash == std::string::npos ? std::string(".")
                                   : Dir.substr(0, Slash);

  DiagnosticEngine Diags;
  runtime::Interpreter::Options Opts;
  Opts.UseGpu = !UseCpu;
  Opts.BasePath = Dir;
  Opts.Run.Trace = obs::Tracer::enabled();
  Opts.Run.ScanWorkers = ScanWorkers;
  runtime::Interpreter Interp(Diags, std::move(Opts));
  std::optional<std::string> Output = Interp.run(*Source);
  std::fputs(Diags.str().c_str(), stderr);

  if (!TraceOut.empty() &&
      !obs::Tracer::instance().writeChromeTrace(TraceOut)) {
    std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                 TraceOut.c_str());
    return 1;
  }
  if (TraceTree)
    std::fputs(obs::Tracer::instance().spanTree().c_str(), stderr);
  if (StatsHuman || StatsJson || !StatsOut.empty()) {
    obs::MetricsSnapshot Snap = obs::MetricsRegistry::global().snapshot();
    if (StatsJson)
      std::fprintf(stderr, "%s\n", Snap.json().c_str());
    else if (StatsHuman)
      std::fputs(Snap.str().c_str(), stderr);
    if (!StatsOut.empty()) {
      std::ofstream StatsFile(StatsOut, std::ios::binary | std::ios::trunc);
      StatsFile << Snap.json() << '\n';
      if (!StatsFile) {
        std::fprintf(stderr, "error: cannot write stats to '%s'\n",
                     StatsOut.c_str());
        return 1;
      }
    }
  }
  if (!Output)
    return 1;
  std::fputs(Output->c_str(), stdout);
  return 0;
}

int cmdCheck(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  DiagnosticEngine Diags;
  auto Fn = analyzeFile(Argv[2], Diags);
  std::fputs(Diags.str().c_str(), stderr);
  if (!Fn)
    return 1;
  std::printf("%s\n", Fn->Decl->signatureStr().c_str());
  std::printf("recursion dimensions:");
  for (const lang::DimInfo &Dim : Fn->Info->Dims)
    std::printf(" %s", Dim.Name.c_str());
  std::printf("\nrecursive calls:\n");
  for (const solver::DescentFunction &Call :
       Fn->Info->Recurrence.Calls)
    std::printf("  %s%s\n",
                Call.str(Fn->Info->Recurrence.DimNames).c_str(),
                Call.isUniform() ? " (uniform)" : " (affine)");
  return 0;
}

int cmdSchedule(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  DiagnosticEngine Diags;
  auto Fn = analyzeFile(Argv[2], Diags);
  if (!Fn) {
    std::fputs(Diags.str().c_str(), stderr);
    return 1;
  }
  auto Box = boxFromArgs(Argc, Argv, 3, Fn->Info->numDims());
  if (!Box)
    return 1;
  auto S = solver::findMinimalSchedule(Fn->Info->Recurrence, *Box, Diags);
  std::fputs(Diags.str().c_str(), stderr);
  if (!S)
    return 1;
  std::printf("S_%s = %s\n", Fn->Decl->Name.c_str(),
              S->str(Fn->Info->Recurrence.DimNames).c_str());
  std::printf("partitions: %lld\n",
              static_cast<long long>(S->partitionCount(*Box)));
  auto Window = solver::slidingWindowDepth(Fn->Info->Recurrence, *S);
  if (Window)
    std::printf("sliding window: %lld previous partitions\n",
                static_cast<long long>(*Window));
  else
    std::printf("sliding window: unavailable (affine descents)\n");
  return 0;
}

int cmdEmit(int Argc, char **Argv) {
  int Index = 2;
  DiagnosticEngine Diags;
  std::optional<solver::Schedule> UserSchedule =
      parseScheduleOption(Argc, Argv, &Index);
  if (Index >= Argc)
    return usage();
  auto Fn = analyzeFile(Argv[Index], Diags);
  if (!Fn) {
    std::fputs(Diags.str().c_str(), stderr);
    return 1;
  }
  if (UserSchedule) {
    // Verify against the criteria before emitting (Section 4.5); with
    // uniform descents no box is needed.
    if (!solver::verifySchedule(Fn->Info->Recurrence, *UserSchedule,
                                std::nullopt, Diags)) {
      std::fputs(Diags.str().c_str(), stderr);
      return 1;
    }
    std::printf("%s\n%s",
                codegen::emitCudaKernel(*Fn->Decl, *Fn->Info,
                                        *UserSchedule)
                    .c_str(),
                codegen::emitHostLaunchStub(*Fn->Decl, *Fn->Info)
                    .c_str());
    return 0;
  }
  // Conditional derivation needs no box; fall back to a generic box for
  // affine descents.
  std::optional<solver::Schedule> S;
  if (Fn->Info->Recurrence.allUniform()) {
    auto Candidates =
        solver::findConditionalSchedules(Fn->Info->Recurrence, Diags);
    if (Candidates && !Candidates->empty())
      S = (*Candidates)[0].S;
  }
  if (!S) {
    std::vector<int64_t> Extents(Fn->Info->numDims(), 128);
    S = solver::findMinimalSchedule(Fn->Info->Recurrence,
                                    solver::DomainBox::fromExtents(
                                        Extents),
                                    Diags);
  }
  std::fputs(Diags.str().c_str(), stderr);
  if (!S)
    return 1;
  std::printf("%s\n%s",
              codegen::emitCudaKernel(*Fn->Decl, *Fn->Info, *S).c_str(),
              codegen::emitHostLaunchStub(*Fn->Decl, *Fn->Info)
                  .c_str());
  return 0;
}

int cmdLoops(int Argc, char **Argv) {
  int Index = 2;
  DiagnosticEngine Diags;
  std::optional<solver::Schedule> UserSchedule =
      parseScheduleOption(Argc, Argv, &Index);
  if (Index >= Argc)
    return usage();
  auto Fn = analyzeFile(Argv[Index], Diags);
  if (!Fn) {
    std::fputs(Diags.str().c_str(), stderr);
    return 1;
  }
  auto Box = boxFromArgs(Argc, Argv, Index + 1, Fn->Info->numDims());
  if (!Box)
    return 1;
  std::optional<solver::Schedule> S;
  if (UserSchedule) {
    if (!solver::verifySchedule(Fn->Info->Recurrence, *UserSchedule,
                                *Box, Diags)) {
      std::fputs(Diags.str().c_str(), stderr);
      return 1;
    }
    S = std::move(UserSchedule);
  } else {
    S = solver::findMinimalSchedule(Fn->Info->Recurrence, *Box, Diags);
  }
  std::fputs(Diags.str().c_str(), stderr);
  if (!S)
    return 1;

  std::vector<std::string> Names;
  for (const lang::DimInfo &Dim : Fn->Info->Dims)
    Names.push_back(Dim.Name);
  poly::Polyhedron Domain(Names);
  for (unsigned D = 0; D != Box->numDims(); ++D)
    Domain.addBounds(D, Box->Lower[D], Box->Upper[D]);
  poly::LoopNest Nest =
      poly::generateLoops(Domain, 0, S->toAffineExpr(0));
  std::printf("// CLooG-style sequential scan (Figure 9)\n%s\n",
              poly::printSequentialLoops(Nest).c_str());
  std::printf("// Thread-partitioned conversion (Figure 10)\n%s",
              poly::printParallelLoops(Nest).c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  if (std::strcmp(Argv[1], "run") == 0)
    return cmdRun(Argc, Argv);
  if (std::strcmp(Argv[1], "check") == 0)
    return cmdCheck(Argc, Argv);
  if (std::strcmp(Argv[1], "schedule") == 0)
    return cmdSchedule(Argc, Argv);
  if (std::strcmp(Argv[1], "emit") == 0)
    return cmdEmit(Argc, Argv);
  if (std::strcmp(Argv[1], "loops") == 0)
    return cmdLoops(Argc, Argv);
  return usage();
}
