//===- parrec.cpp - The ParRec command-line driver ----------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler driver:
///   parrec run <script.rdsl>         execute a script on the simulator
///   parrec run --cpu <script.rdsl>   execute with the modelled CPU
///   parrec check <fn.rdsl>           parse + analyse one function
///   parrec schedule <fn.rdsl> n1 n2  print the minimal schedule for a box
///   parrec emit <fn.rdsl> [n1 n2..]  print the synthesized CUDA source
///   parrec loops <fn.rdsl> n1 n2     print the Figure 9/10 loop nests
///   parrec serve --replay=<w.json>   replay a workload through the
///                                    serving engine and print throughput
///                                    and latency percentiles
///
/// `run` observability flags:
///   --trace-out=<file>   trace the pipeline and write Chrome trace-event
///                        JSON (open in Perfetto / chrome://tracing)
///   --trace-tree         print the span tree to stderr after the run
///   --stats[=json]       print the metrics registry to stderr
///   --stats-out=<file>   write the metrics registry snapshot JSON
///
/// `emit` and `loops` accept `--schedule a1,a2,...` to use a
/// user-provided scheduling function instead of the derived one; it is
/// verified against the dependency criteria first (Section 4.5).
///
//===----------------------------------------------------------------------===//

#include "codegen/CudaEmitter.h"
#include "compiler/Pipeline.h"
#include "lang/Parser.h"
#include "obs/Export.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "poly/CPrinter.h"
#include "runtime/Interpreter.h"
#include "serve/Router.h"
#include "serve/Workload.h"
#include "support/StringUtils.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace parrec;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: parrec <command> [options] <file> [extents...]\n"
               "commands:\n"
               "  run [--cpu] [--autotune] [--scan-workers=<n>]\n"
               "      [--pipeline|--no-pipeline] [--pack-small]\n"
               "      [--evaluator=ast|vm|jit] [--jit-cache-dir=<dir>]\n"
               "      [--trace-out=<f>] [--trace-tree] [--stats[=json]]\n"
               "      [--stats-out=<f>] [--dump-passes]\n"
               "      [--disable-pass=<name>]\n"
               "      <script>           execute a script\n"
               "                         (--scan-workers: host threads per\n"
               "                         partition scan; 0 auto, 1 serial —\n"
               "                         results are identical either way;\n"
               "                         --autotune: score candidate\n"
               "                         schedules with the cost model —\n"
               "                         results are identical too;\n"
               "                         --evaluator: cell evaluator — ast\n"
               "                         oracle, vm bytecode (default), jit\n"
               "                         native; all bit-identical;\n"
               "                         --pipeline: overlap batch members'\n"
               "                         partitions across multiprocessors,\n"
               "                         --pack-small: pack underfilled\n"
               "                         blocks (needs --pipeline) — both\n"
               "                         change modelled wall-clock only)\n"
               "  check <function>       analyse a single function\n"
               "  schedule <fn> <n...>   derive the minimal schedule\n"
               "  emit <fn>              print synthesized CUDA source\n"
               "  loops <fn> <n...>      print generated loop nests\n"
               "  serve --replay=<w.json> [--devices=<n>]\n"
               "      [--queue-cap=<n>] [--max-batch=<n>]\n"
               "      [--linger=<ticks>] [--no-coalesce]\n"
               "      [--router-shards=<n>] [--spill-depth=<n>]\n"
               "      [--tenant-weight=<name>=<w>] [--continuous-batch]\n"
               "      [--memo-cap=<entries>]\n"
               "      [--pipeline|--no-pipeline] [--pack-small]\n"
               "      [--batch-workers=<n>] [--scan-workers=<n>]\n"
               "      [--strict] [--stats-out=<f>] [--trace-out=<f>]\n"
               "      [--prom-out=<f>] [--export-jsonl=<f>]\n"
               "      [--export-interval=<ms>] [--flight-dump=<f>]\n"
               "                         replay a workload through the\n"
               "                         serving engine (--strict: fail\n"
               "                         on any non-ok response;\n"
               "                         --router-shards: front router over\n"
               "                         N engine shards, --spill-depth:\n"
               "                         re-route when the sticky shard's\n"
               "                         queue is deeper than this;\n"
               "                         --tenant-weight: fair-queue weight\n"
               "                         override (repeatable);\n"
               "                         --continuous-batch: admit matching\n"
               "                         late arrivals into queued batches;\n"
               "                         --memo-cap: memoize results, LRU\n"
               "                         over this many entries;\n"
               "                         --prom-out: continuously export\n"
               "                         Prometheus text; --export-jsonl:\n"
               "                         append a JSONL metrics series;\n"
               "                         --flight-dump: dump the flight\n"
               "                         recorder here after the replay,\n"
               "                         and on the first deadline/failed\n"
               "                         response)\n");
  return 2;
}

/// Strictly parses an unsigned decimal flag value; one-line error and
/// false on anything else (including trailing junk and overflow).
bool parseCount(const char *Flag, const char *Value, uint64_t *Out) {
  if (*Value == '\0') {
    std::fprintf(stderr, "error: %s needs a number, got ''\n", Flag);
    return false;
  }
  char *End = nullptr;
  errno = 0;
  unsigned long long Parsed = std::strtoull(Value, &End, 10);
  if (errno != 0 || *End != '\0' || Value[0] == '-') {
    std::fprintf(stderr, "error: %s needs a number, got '%s'\n", Flag,
                 Value);
    return false;
  }
  *Out = Parsed;
  return true;
}

bool parseCount(const char *Flag, const char *Value, unsigned *Out) {
  uint64_t Wide = 0;
  if (!parseCount(Flag, Value, &Wide))
    return false;
  if (Wide > 0xFFFFFFFFull) {
    std::fprintf(stderr, "error: %s value '%s' is out of range\n", Flag,
                 Value);
    return false;
  }
  *Out = static_cast<unsigned>(Wide);
  return true;
}

std::optional<std::string> readFile(const char *Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

struct AnalyzedFunction {
  std::unique_ptr<lang::FunctionDecl> Decl;
  std::optional<lang::FunctionInfo> Info;
};

std::optional<AnalyzedFunction> analyzeFile(const char *Path,
                                            DiagnosticEngine &Diags) {
  std::optional<std::string> Source = readFile(Path);
  if (!Source) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path);
    return std::nullopt;
  }
  AnalyzedFunction Result;
  lang::Parser P(*Source, Diags);
  Result.Decl = P.parseFunctionOnly();
  if (!Result.Decl)
    return std::nullopt;
  lang::Sema S(Diags, {"dna", "rna", "protein", "en"});
  Result.Info = S.analyze(*Result.Decl);
  if (!Result.Info)
    return std::nullopt;
  return Result;
}

/// Parses a --schedule a1,a2,... option if present at Argv[*Index],
/// advancing *Index past it. Returns nullopt when absent; exits with an
/// error message on malformed input.
std::optional<solver::Schedule> parseScheduleOption(int Argc, char **Argv,
                                                    int *Index) {
  if (*Index + 1 >= Argc ||
      std::strcmp(Argv[*Index], "--schedule") != 0)
    return std::nullopt;
  solver::Schedule S;
  for (const std::string &Piece :
       splitString(Argv[*Index + 1], ','))
    S.Coefficients.push_back(std::atoll(Piece.c_str()));
  *Index += 2;
  return S;
}

std::optional<solver::DomainBox> boxFromArgs(int Argc, char **Argv,
                                             int First, unsigned Dims) {
  if (Argc - First != static_cast<int>(Dims)) {
    std::fprintf(stderr,
                 "error: expected %u domain extents, got %d\n", Dims,
                 Argc - First);
    return std::nullopt;
  }
  std::vector<int64_t> Extents;
  for (int I = First; I != Argc; ++I)
    Extents.push_back(std::atoll(Argv[I]));
  for (int64_t E : Extents)
    if (E <= 0) {
      std::fprintf(stderr, "error: extents must be positive\n");
      return std::nullopt;
    }
  return solver::DomainBox::fromExtents(Extents);
}

/// Returns the value of a `--name=value` option, or null when \p Arg is
/// not that option.
const char *optionValue(const char *Arg, const char *Name) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(Arg, Name, Len) != 0 || Arg[Len] != '=')
    return nullptr;
  return Arg + Len + 1;
}

int cmdRun(int Argc, char **Argv) {
  bool UseCpu = false, Autotune = false, DumpPasses = false;
  bool StatsHuman = false, StatsJson = false, TraceTree = false;
  bool Pipeline = false, PackSmall = false;
  unsigned ScanWorkers = 0;
  exec::EvalKind Evaluator = exec::EvalKind::Vm;
  std::string TraceOut, StatsOut, JitCacheDir;
  std::vector<std::string> DisabledPasses;
  int FileIndex = 2;
  for (; FileIndex < Argc && Argv[FileIndex][0] == '-'; ++FileIndex) {
    const char *Arg = Argv[FileIndex];
    const char *Value;
    if (std::strcmp(Arg, "--cpu") == 0)
      UseCpu = true;
    else if (std::strcmp(Arg, "--autotune") == 0)
      Autotune = true;
    else if (std::strcmp(Arg, "--pipeline") == 0)
      Pipeline = true;
    else if (std::strcmp(Arg, "--no-pipeline") == 0)
      Pipeline = false;
    else if (std::strcmp(Arg, "--pack-small") == 0)
      PackSmall = true;
    else if (std::strcmp(Arg, "--dump-passes") == 0)
      DumpPasses = true;
    else if ((Value = optionValue(Arg, "--disable-pass"))) {
      if (!compiler::isKnownPass(Value)) {
        std::fprintf(stderr, "error: unknown pass '%s'\n", Value);
        return 2;
      }
      DisabledPasses.push_back(Value);
    } else if ((Value = optionValue(Arg, "--scan-workers"))) {
      if (!parseCount("--scan-workers", Value, &ScanWorkers))
        return 2;
    } else if ((Value = optionValue(Arg, "--evaluator"))) {
      if (std::strcmp(Value, "ast") == 0)
        Evaluator = exec::EvalKind::Ast;
      else if (std::strcmp(Value, "vm") == 0)
        Evaluator = exec::EvalKind::Vm;
      else if (std::strcmp(Value, "jit") == 0)
        Evaluator = exec::EvalKind::Jit;
      else {
        std::fprintf(stderr,
                     "error: --evaluator must be ast, vm or jit, got "
                     "'%s'\n",
                     Value);
        return 2;
      }
    } else if ((Value = optionValue(Arg, "--jit-cache-dir"))) {
      JitCacheDir = Value;
    } else if ((Value = optionValue(Arg, "--trace-out")))
      TraceOut = Value;
    else if (std::strcmp(Arg, "--trace-tree") == 0)
      TraceTree = true;
    else if (std::strcmp(Arg, "--stats") == 0)
      StatsHuman = true;
    else if (std::strcmp(Arg, "--stats=json") == 0)
      StatsJson = true;
    else if ((Value = optionValue(Arg, "--stats-out")))
      StatsOut = Value;
    else {
      std::fprintf(stderr, "error: unknown run option '%s'\n", Arg);
      return usage();
    }
  }
  if (FileIndex >= Argc)
    return usage();
  if (PackSmall && !Pipeline) {
    std::fprintf(stderr, "error: --pack-small requires --pipeline\n");
    return 2;
  }
  if (!DisabledPasses.empty())
    compiler::setDisabledPasses(std::move(DisabledPasses));
  if (!TraceOut.empty() || TraceTree)
    obs::Tracer::instance().enable();
  std::optional<std::string> Source = readFile(Argv[FileIndex]);
  if (!Source) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Argv[FileIndex]);
    return 1;
  }
  // Loads resolve relative to the script's directory.
  std::string Dir = Argv[FileIndex];
  size_t Slash = Dir.rfind('/');
  Dir = Slash == std::string::npos ? std::string(".")
                                   : Dir.substr(0, Slash);

  DiagnosticEngine Diags;
  runtime::Interpreter::Options Opts;
  Opts.UseGpu = !UseCpu;
  Opts.BasePath = Dir;
  Opts.Run.Trace = obs::Tracer::enabled();
  Opts.Run.ScanWorkers = ScanWorkers;
  Opts.Run.Autotune = Autotune;
  Opts.Run.Pipeline = Pipeline;
  Opts.Run.PackSmall = PackSmall;
  Opts.Run.Evaluator = Evaluator;
  Opts.Run.JitCacheDir = JitCacheDir;
  runtime::Interpreter Interp(Diags, std::move(Opts));
  std::optional<std::string> Output = Interp.run(*Source);
  std::fputs(Diags.str().c_str(), stderr);

  if (DumpPasses) {
    obs::MetricsSnapshot Snap = obs::MetricsRegistry::global().snapshot();
    std::fprintf(stderr, "%-20s %8s %12s\n", "pass", "runs", "total ms");
    for (const std::string &Name : compiler::allPassNames()) {
      auto It = Snap.Distributions.find("compile.pass." + Name + ".ns");
      uint64_t Runs = It == Snap.Distributions.end() ? 0 : It->second.Count;
      double Ms =
          It == Snap.Distributions.end() ? 0.0 : It->second.Sum / 1e6;
      std::fprintf(stderr, "%-20s %8llu %12.3f%s\n", Name.c_str(),
                   static_cast<unsigned long long>(Runs), Ms,
                   compiler::isPassDisabled(Name) ? "  (disabled)" : "");
    }
  }

  if (!TraceOut.empty() &&
      !obs::Tracer::instance().writeChromeTrace(TraceOut)) {
    std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                 TraceOut.c_str());
    return 1;
  }
  if (TraceTree)
    std::fputs(obs::Tracer::instance().spanTree().c_str(), stderr);
  if (StatsHuman || StatsJson || !StatsOut.empty()) {
    obs::MetricsSnapshot Snap = obs::MetricsRegistry::global().snapshot();
    if (StatsJson)
      std::fprintf(stderr, "%s\n", Snap.json().c_str());
    else if (StatsHuman)
      std::fputs(Snap.str().c_str(), stderr);
    if (!StatsOut.empty()) {
      std::ofstream StatsFile(StatsOut, std::ios::binary | std::ios::trunc);
      StatsFile << Snap.json() << '\n';
      if (!StatsFile) {
        std::fprintf(stderr, "error: cannot write stats to '%s'\n",
                     StatsOut.c_str());
        return 1;
      }
    }
  }
  if (!Output)
    return 1;
  std::fputs(Output->c_str(), stdout);
  return 0;
}

int cmdCheck(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  DiagnosticEngine Diags;
  auto Fn = analyzeFile(Argv[2], Diags);
  std::fputs(Diags.str().c_str(), stderr);
  if (!Fn)
    return 1;
  std::printf("%s\n", Fn->Decl->signatureStr().c_str());
  std::printf("recursion dimensions:");
  for (const lang::DimInfo &Dim : Fn->Info->Dims)
    std::printf(" %s", Dim.Name.c_str());
  std::printf("\nrecursive calls:\n");
  for (const solver::DescentFunction &Call :
       Fn->Info->Recurrence.Calls)
    std::printf("  %s%s\n",
                Call.str(Fn->Info->Recurrence.DimNames).c_str(),
                Call.isUniform() ? " (uniform)" : " (affine)");
  return 0;
}

int cmdSchedule(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  DiagnosticEngine Diags;
  auto Fn = analyzeFile(Argv[2], Diags);
  if (!Fn) {
    std::fputs(Diags.str().c_str(), stderr);
    return 1;
  }
  auto Box = boxFromArgs(Argc, Argv, 3, Fn->Info->numDims());
  if (!Box)
    return 1;
  auto S = solver::findMinimalSchedule(Fn->Info->Recurrence, *Box, Diags);
  std::fputs(Diags.str().c_str(), stderr);
  if (!S)
    return 1;
  std::printf("S_%s = %s\n", Fn->Decl->Name.c_str(),
              S->str(Fn->Info->Recurrence.DimNames).c_str());
  std::printf("partitions: %lld\n",
              static_cast<long long>(S->partitionCount(*Box)));
  auto Window = solver::slidingWindowDepth(Fn->Info->Recurrence, *S);
  if (Window)
    std::printf("sliding window: %lld previous partitions\n",
                static_cast<long long>(*Window));
  else
    std::printf("sliding window: unavailable (affine descents)\n");
  return 0;
}

int cmdEmit(int Argc, char **Argv) {
  int Index = 2;
  DiagnosticEngine Diags;
  std::optional<solver::Schedule> UserSchedule =
      parseScheduleOption(Argc, Argv, &Index);
  if (Index >= Argc)
    return usage();
  auto Fn = analyzeFile(Argv[Index], Diags);
  if (!Fn) {
    std::fputs(Diags.str().c_str(), stderr);
    return 1;
  }
  if (UserSchedule) {
    // Verify against the criteria before emitting (Section 4.5); with
    // uniform descents no box is needed.
    if (!solver::verifySchedule(Fn->Info->Recurrence, *UserSchedule,
                                std::nullopt, Diags)) {
      std::fputs(Diags.str().c_str(), stderr);
      return 1;
    }
    std::printf("%s\n%s",
                codegen::emitCudaKernel(*Fn->Decl, *Fn->Info,
                                        *UserSchedule)
                    .c_str(),
                codegen::emitHostLaunchStub(*Fn->Decl, *Fn->Info)
                    .c_str());
    return 0;
  }
  // Conditional derivation needs no box; fall back to a generic box for
  // affine descents.
  std::optional<solver::Schedule> S;
  if (Fn->Info->Recurrence.allUniform()) {
    auto Candidates =
        solver::findConditionalSchedules(Fn->Info->Recurrence, Diags);
    if (Candidates && !Candidates->empty())
      S = (*Candidates)[0].S;
  }
  if (!S) {
    std::vector<int64_t> Extents(Fn->Info->numDims(), 128);
    S = solver::findMinimalSchedule(Fn->Info->Recurrence,
                                    solver::DomainBox::fromExtents(
                                        Extents),
                                    Diags);
  }
  std::fputs(Diags.str().c_str(), stderr);
  if (!S)
    return 1;
  std::printf("%s\n%s",
              codegen::emitCudaKernel(*Fn->Decl, *Fn->Info, *S).c_str(),
              codegen::emitHostLaunchStub(*Fn->Decl, *Fn->Info)
                  .c_str());
  return 0;
}

int cmdLoops(int Argc, char **Argv) {
  int Index = 2;
  DiagnosticEngine Diags;
  std::optional<solver::Schedule> UserSchedule =
      parseScheduleOption(Argc, Argv, &Index);
  if (Index >= Argc)
    return usage();
  auto Fn = analyzeFile(Argv[Index], Diags);
  if (!Fn) {
    std::fputs(Diags.str().c_str(), stderr);
    return 1;
  }
  auto Box = boxFromArgs(Argc, Argv, Index + 1, Fn->Info->numDims());
  if (!Box)
    return 1;
  std::optional<solver::Schedule> S;
  if (UserSchedule) {
    if (!solver::verifySchedule(Fn->Info->Recurrence, *UserSchedule,
                                *Box, Diags)) {
      std::fputs(Diags.str().c_str(), stderr);
      return 1;
    }
    S = std::move(UserSchedule);
  } else {
    S = solver::findMinimalSchedule(Fn->Info->Recurrence, *Box, Diags);
  }
  std::fputs(Diags.str().c_str(), stderr);
  if (!S)
    return 1;

  std::vector<std::string> Names;
  for (const lang::DimInfo &Dim : Fn->Info->Dims)
    Names.push_back(Dim.Name);
  poly::Polyhedron Domain(Names);
  for (unsigned D = 0; D != Box->numDims(); ++D)
    Domain.addBounds(D, Box->Lower[D], Box->Upper[D]);
  poly::LoopNest Nest =
      poly::generateLoops(Domain, 0, S->toAffineExpr(0));
  std::printf("// CLooG-style sequential scan (Figure 9)\n%s\n",
              poly::printSequentialLoops(Nest).c_str());
  std::printf("// Thread-partitioned conversion (Figure 10)\n%s",
              poly::printParallelLoops(Nest).c_str());
  return 0;
}

int cmdServe(int Argc, char **Argv) {
  serve::Engine::Options Opts;
  bool Strict = false;
  std::string Replay, StatsOut, TraceOut;
  std::string PromOut, ExportJsonl, FlightDump;
  uint64_t ExportIntervalMs = 0;
  unsigned RouterShards = 0; // 0 = no front router, direct engine.
  uint64_t SpillDepth = 0;
  std::map<std::string, uint64_t> WeightOverrides;
  for (int Index = 2; Index < Argc; ++Index) {
    const char *Arg = Argv[Index];
    const char *Value;
    if (Arg[0] != '-') {
      // A bare path is the workload file.
      if (!Replay.empty()) {
        std::fprintf(stderr,
                     "error: more than one workload file ('%s', '%s')\n",
                     Replay.c_str(), Arg);
        return 2;
      }
      Replay = Arg;
    } else if ((Value = optionValue(Arg, "--replay"))) {
      Replay = Value;
    } else if ((Value = optionValue(Arg, "--devices"))) {
      if (!parseCount("--devices", Value, &Opts.Devices))
        return 2;
      if (Opts.Devices == 0) {
        std::fprintf(stderr, "error: --devices must be at least 1\n");
        return 2;
      }
    } else if ((Value = optionValue(Arg, "--queue-cap"))) {
      uint64_t Cap = 0;
      if (!parseCount("--queue-cap", Value, &Cap))
        return 2;
      if (Cap == 0) {
        std::fprintf(stderr, "error: --queue-cap must be at least 1\n");
        return 2;
      }
      Opts.QueueCapacity = static_cast<size_t>(Cap);
    } else if ((Value = optionValue(Arg, "--max-batch"))) {
      uint64_t Max = 0;
      if (!parseCount("--max-batch", Value, &Max))
        return 2;
      if (Max == 0) {
        std::fprintf(stderr, "error: --max-batch must be at least 1\n");
        return 2;
      }
      Opts.MaxBatch = static_cast<size_t>(Max);
    } else if ((Value = optionValue(Arg, "--linger"))) {
      if (!parseCount("--linger", Value, &Opts.LingerTicks))
        return 2;
    } else if (std::strcmp(Arg, "--no-coalesce") == 0) {
      Opts.Coalesce = false;
    } else if ((Value = optionValue(Arg, "--router-shards"))) {
      if (!parseCount("--router-shards", Value, &RouterShards))
        return 2;
      if (RouterShards == 0) {
        std::fprintf(stderr,
                     "error: --router-shards must be at least 1\n");
        return 2;
      }
    } else if ((Value = optionValue(Arg, "--spill-depth"))) {
      if (!parseCount("--spill-depth", Value, &SpillDepth))
        return 2;
    } else if ((Value = optionValue(Arg, "--tenant-weight"))) {
      const char *Eq = std::strchr(Value, '=');
      if (!Eq || Eq == Value) {
        std::fprintf(stderr, "error: --tenant-weight needs "
                             "<name>=<weight>, got '%s'\n",
                     Value);
        return 2;
      }
      uint64_t Weight = 0;
      if (!parseCount("--tenant-weight", Eq + 1, &Weight))
        return 2;
      if (Weight == 0) {
        std::fprintf(stderr,
                     "error: --tenant-weight must be at least 1\n");
        return 2;
      }
      WeightOverrides[std::string(Value, Eq)] = Weight;
    } else if (std::strcmp(Arg, "--continuous-batch") == 0) {
      Opts.ContinuousBatch = true;
    } else if ((Value = optionValue(Arg, "--memo-cap"))) {
      uint64_t Cap = 0;
      if (!parseCount("--memo-cap", Value, &Cap))
        return 2;
      Opts.MemoCapacity = static_cast<size_t>(Cap);
    } else if (std::strcmp(Arg, "--pipeline") == 0) {
      Opts.Pipeline = true;
    } else if (std::strcmp(Arg, "--no-pipeline") == 0) {
      Opts.Pipeline = false;
    } else if (std::strcmp(Arg, "--pack-small") == 0) {
      Opts.PackSmall = true;
    } else if ((Value = optionValue(Arg, "--batch-workers"))) {
      if (!parseCount("--batch-workers", Value,
                      &Opts.BatchWorkersPerDevice))
        return 2;
    } else if ((Value = optionValue(Arg, "--scan-workers"))) {
      if (!parseCount("--scan-workers", Value,
                      &Opts.ScanWorkersPerDevice))
        return 2;
    } else if (std::strcmp(Arg, "--strict") == 0) {
      Strict = true;
    } else if ((Value = optionValue(Arg, "--stats-out"))) {
      StatsOut = Value;
    } else if ((Value = optionValue(Arg, "--trace-out"))) {
      TraceOut = Value;
    } else if ((Value = optionValue(Arg, "--prom-out"))) {
      PromOut = Value;
    } else if ((Value = optionValue(Arg, "--export-jsonl"))) {
      ExportJsonl = Value;
    } else if ((Value = optionValue(Arg, "--export-interval"))) {
      if (!parseCount("--export-interval", Value, &ExportIntervalMs))
        return 2;
    } else if ((Value = optionValue(Arg, "--flight-dump"))) {
      FlightDump = Value;
    } else {
      std::fprintf(stderr, "error: unknown serve option '%s'\n", Arg);
      return 2;
    }
  }
  if (Opts.PackSmall && !Opts.Pipeline) {
    std::fprintf(stderr, "error: --pack-small requires --pipeline\n");
    return 2;
  }
  if (ExportIntervalMs != 0 && PromOut.empty() && ExportJsonl.empty()) {
    std::fprintf(stderr, "error: --export-interval needs --prom-out "
                         "and/or --export-jsonl\n");
    return 2;
  }
  if (Replay.empty()) {
    std::fprintf(stderr,
                 "error: serve needs a workload (--replay=<file>)\n");
    return 2;
  }
  if (!TraceOut.empty())
    obs::Tracer::instance().enable();

  std::string SpecError;
  std::optional<serve::WorkloadSpec> Spec =
      serve::loadWorkloadSpec(Replay, &SpecError);
  if (!Spec) {
    std::fprintf(stderr, "error: %s\n", SpecError.c_str());
    return 1;
  }
  DiagnosticEngine Diags;
  std::optional<serve::Workload> Workload =
      serve::Workload::build(*Spec, Diags);
  if (!Workload) {
    std::fputs(Diags.str().c_str(), stderr);
    std::fprintf(stderr, "error: cannot build workload from '%s'\n",
                 Replay.c_str());
    return 1;
  }

  if (!FlightDump.empty())
    Opts.FlightDumpPath = FlightDump;
  // Fair-queue weights: workload spec first, CLI overrides on top.
  Opts.TenantWeights = Spec->tenantWeights();
  for (const auto &[Tenant, Weight] : WeightOverrides)
    Opts.TenantWeights[Tenant] = Weight;

  std::optional<serve::Engine> Engine;
  std::optional<serve::Router> Router;
  if (RouterShards != 0) {
    serve::Router::Options RouterOpts;
    RouterOpts.Shard = Opts;
    RouterOpts.Shards = RouterShards;
    RouterOpts.SpillQueueDepth = static_cast<size_t>(SpillDepth);
    Router.emplace(std::move(RouterOpts));
  } else {
    Engine.emplace(Opts);
  }

  // The exporter samples the registry on its own thread during the
  // replay; stop() below writes the final snapshot, so even a replay
  // shorter than one interval leaves complete outputs.
  std::optional<obs::MetricsExporter> Exporter;
  if (!PromOut.empty() || !ExportJsonl.empty()) {
    obs::MetricsExporter::Options ExportOpts;
    ExportOpts.PromPath = PromOut;
    ExportOpts.JsonlPath = ExportJsonl;
    ExportOpts.IntervalMs = ExportIntervalMs;
    if (Router)
      ExportOpts.TickSource = [&Router] { return Router->now(); };
    else
      ExportOpts.TickSource = [&Engine] { return Engine->now(); };
    Exporter.emplace(std::move(ExportOpts));
  }

  serve::ReplayReport Report = Router
                                   ? serve::replay(*Router, *Workload)
                                   : serve::replay(*Engine, *Workload);
  if (Exporter)
    Exporter->stop();
  if (!FlightDump.empty() && Engine &&
      !Engine->dumpFlightRecorder(FlightDump))
    std::fprintf(stderr, "error: cannot write flight dump to '%s'\n",
                 FlightDump.c_str());

  std::printf("replayed %llu requests across %u device(s)\n",
              static_cast<unsigned long long>(Report.Total),
              Opts.Devices);
  for (const auto &[Name, Count] : Report.ByStatus)
    std::printf("  %-12s %llu\n", Name.c_str(),
                static_cast<unsigned long long>(Count));
  std::printf("batches: %llu (%.2f requests/batch)\n",
              static_cast<unsigned long long>(Report.Stats.Batches),
              Report.Stats.Batches
                  ? static_cast<double>(Report.Stats.Completed) /
                        static_cast<double>(Report.Stats.Batches)
                  : 0.0);
  std::printf("throughput: %.1f ok/s over %.3fs wall\n",
              Report.Throughput, Report.WallSeconds);
  std::printf("latency p50/p95/p99: %.6fs / %.6fs / %.6fs\n",
              Report.P50Seconds, Report.P95Seconds, Report.P99Seconds);
  for (const auto &[Tenant, TL] : Report.ByTenant)
    std::printf("  tenant %-12s ok=%llu p50/p95/p99: %.6fs / %.6fs / "
                "%.6fs\n",
                Tenant.c_str(), static_cast<unsigned long long>(TL.Ok),
                TL.P50Seconds, TL.P95Seconds, TL.P99Seconds);
  if (Report.Stats.MemoHits || Report.Stats.ContinuousJoins)
    std::printf("memo hits: %llu, continuous joins: %llu\n",
                static_cast<unsigned long long>(Report.Stats.MemoHits),
                static_cast<unsigned long long>(
                    Report.Stats.ContinuousJoins));
  if (Report.RouterShards)
    std::printf("router: %u shard(s), spilled=%llu rerouted=%llu "
                "drains=%llu readmits=%llu\n",
                Report.RouterShards,
                static_cast<unsigned long long>(Report.RouterSpilled),
                static_cast<unsigned long long>(Report.RouterRerouted),
                static_cast<unsigned long long>(Report.RouterDrains),
                static_cast<unsigned long long>(Report.RouterReadmits));
  std::printf("modelled busiest device: %llu cycles (%.6fs)\n",
              static_cast<unsigned long long>(Report.ModelledCycles),
              Report.ModelledSeconds);
  std::printf(
      "completion cycles p50/p95/p99: %llu / %llu / %llu\n",
      static_cast<unsigned long long>(Report.CompletionCycleP50),
      static_cast<unsigned long long>(Report.CompletionCycleP95),
      static_cast<unsigned long long>(Report.CompletionCycleP99));

  if (!TraceOut.empty() &&
      !obs::Tracer::instance().writeChromeTrace(TraceOut)) {
    std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                 TraceOut.c_str());
    return 1;
  }
  if (!StatsOut.empty()) {
    std::ofstream StatsFile(StatsOut, std::ios::binary | std::ios::trunc);
    StatsFile << Report.json() << '\n';
    if (!StatsFile) {
      std::fprintf(stderr, "error: cannot write stats to '%s'\n",
                   StatsOut.c_str());
      return 1;
    }
  }
  if (Strict && Report.okCount() != Report.Total) {
    std::fprintf(stderr,
                 "error: %llu of %llu requests did not complete ok\n",
                 static_cast<unsigned long long>(Report.Total -
                                                 Report.okCount()),
                 static_cast<unsigned long long>(Report.Total));
    return 1;
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  try {
    if (Argc < 2)
      return usage();
    if (std::strcmp(Argv[1], "run") == 0)
      return cmdRun(Argc, Argv);
    if (std::strcmp(Argv[1], "check") == 0)
      return cmdCheck(Argc, Argv);
    if (std::strcmp(Argv[1], "schedule") == 0)
      return cmdSchedule(Argc, Argv);
    if (std::strcmp(Argv[1], "emit") == 0)
      return cmdEmit(Argc, Argv);
    if (std::strcmp(Argv[1], "loops") == 0)
      return cmdLoops(Argc, Argv);
    if (std::strcmp(Argv[1], "serve") == 0)
      return cmdServe(Argc, Argv);
    std::fprintf(stderr, "error: unknown command '%s'\n", Argv[1]);
    return usage();
  } catch (const std::exception &E) {
    std::fprintf(stderr, "parrec: internal error: %s\n", E.what());
    return 1;
  }
}
