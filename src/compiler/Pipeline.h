//===- Pipeline.h - The compiler pass pipeline --------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler as an explicit pass pipeline. A CompilationModule carries
/// every artifact the phases used to thread by hand — source, AST, sema
/// results, the solver's recurrence view, the resolved schedule, the poly
/// loop nest and the bytecode program — and a PassPipeline runs named
/// Passes over it. The pipeline wrapper gives every pass an obs::Span
/// ("compile.<name>") and a duration metric ("compile.pass.<name>.ns")
/// for free, so phase instrumentation lives in exactly one place.
///
/// Two default pipelines cover the legacy hardwired chains:
///   frontend: parse -> sema -> dependence -> validate -> bytecode
///   planning: schedule_synthesis [-> autotune] -> sliding_window
///             -> loopgen -> finalize
/// `CompiledRecurrence::compile`/`fromDecl` and `exec::buildPlan` are thin
/// wrappers over them, so every existing caller goes through the pipeline
/// unchanged. Individual passes can be disabled for debugging via
/// setDisabledPasses (`parrec run --disable-pass=<name>`); downstream
/// passes fail with a diagnostic, never a crash, when a prerequisite
/// artifact is missing.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_COMPILER_PIPELINE_H
#define PARREC_COMPILER_PIPELINE_H

#include "codegen/Bytecode.h"
#include "exec/Plan.h"
#include "lang/Sema.h"
#include "obs/Trace.h"
#include "solver/Recurrence.h"
#include "support/Diagnostics.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace parrec {
namespace compiler {

/// Everything the passes read and write. Frontend runs start from Source
/// (or a pre-parsed Decl) and fill Info/Bytecode; planning runs start
/// from a recurrence + box + request and fill Plan. One module may carry
/// both halves, but the default wrappers use one half at a time — the
/// frontend once per function, planning once per (box, options) shape.
struct CompilationModule {
  DiagnosticEngine &Diags;

  // --- Frontend artifacts -----------------------------------------------
  /// DSL source holding exactly one function definition; unused (and the
  /// parse pass skipped) when Decl is already present.
  const std::string *Source = nullptr;
  /// Alphabet names usable in seq/char/matrix types.
  std::vector<std::string> Alphabets;
  std::unique_ptr<lang::FunctionDecl> Decl;
  std::optional<lang::FunctionInfo> Info;
  std::shared_ptr<const codegen::BytecodeProgram> Bytecode;

  // --- Planning artifacts -----------------------------------------------
  /// The recurrence planned against; when null, Info's recurrence is
  /// used (a module that ran the frontend plans itself).
  const solver::RecurrenceSpec *Recurrence = nullptr;
  std::vector<std::string> DimNames;
  std::optional<solver::DomainBox> Box;
  exec::PlanRequest Request;
  /// The autotuner's sliding-window verdict; the sliding_window pass
  /// honours it on top of the usual legality checks.
  std::optional<bool> WindowOverride;
  /// Built up across the planning passes: schedule_synthesis resolves
  /// Sched, sliding_window the window fields, loopgen the nest, finalize
  /// the partition range.
  std::optional<exec::ExecutablePlan> Plan;

  explicit CompilationModule(DiagnosticEngine &Diags) : Diags(Diags) {}

  const solver::RecurrenceSpec &recurrence() const {
    return Recurrence ? *Recurrence : Info->Recurrence;
  }
};

/// One named phase. The pipeline provides the span and duration metric;
/// the body only does the work (and may attach span args). Returning
/// false aborts the pipeline after the pass reported diagnostics.
struct Pass {
  /// Pass names double as observability names: span "compile.<Name>",
  /// metric "compile.pass.<Name>.ns".
  std::string Name;
  /// Optional: true skips the pass without span or metric (e.g. parse
  /// when the module already carries an AST).
  std::function<bool(const CompilationModule &)> Skip;
  std::function<bool(CompilationModule &, obs::Span &)> Run;
};

/// An ordered list of passes run over a module. Pipelines are immutable
/// once built and safe to share across threads.
class PassPipeline {
public:
  PassPipeline &addPass(Pass P) {
    Passes.push_back(std::move(P));
    return *this;
  }
  PassPipeline &addPass(std::string Name,
                        std::function<bool(CompilationModule &, obs::Span &)>
                            Run) {
    return addPass(Pass{std::move(Name), nullptr, std::move(Run)});
  }

  /// Runs every (non-disabled, non-skipped) pass in registration order,
  /// wrapping each in an obs::Span named "compile.<pass>" and recording
  /// a "compile.pass.<pass>.ns" duration sample. Stops at the first
  /// failing pass and returns false.
  bool run(CompilationModule &M) const;

  std::vector<std::string> passNames() const;
  size_t size() const { return Passes.size(); }

private:
  std::vector<Pass> Passes;
};

/// The default frontend pipeline: parse, sema, dependence, validate,
/// bytecode.
const PassPipeline &frontendPipeline();

/// The default planning pipeline: schedule_synthesis, sliding_window,
/// loopgen, finalize.
const PassPipeline &planningPipeline();

/// The planning pipeline with the cost-model schedule autotuner inserted
/// after schedule synthesis (RunOptions::Autotune / --autotune).
const PassPipeline &autotunePlanningPipeline();

/// The planning pipeline with the native JIT pass appended after
/// finalize (RunOptions::Evaluator == Jit / --evaluator=jit): renders
/// the finished plan as C, compiles it with the system compiler and
/// attaches the resolved kernel. A JIT failure falls back to the
/// bytecode VM; it never fails the pipeline.
const PassPipeline &jitPlanningPipeline();

/// Autotune and JIT combined: autotune after schedule synthesis, jit
/// after finalize.
const PassPipeline &autotuneJitPlanningPipeline();

/// Runs the default frontend pipeline over \p M.
bool runFrontend(CompilationModule &M);

/// Process-global debugging knob behind `parrec run --disable-pass=`:
/// disabled passes are skipped by every pipeline run. Not synchronised
/// against in-flight pipelines — set it before running, as the CLI does.
void setDisabledPasses(std::vector<std::string> Names);
std::vector<std::string> disabledPasses();
bool isPassDisabled(std::string_view Name);

/// True when \p Name names a registered pass of any default pipeline.
bool isKnownPass(std::string_view Name);

/// Every registered pass name in registration order: the frontend
/// passes, then the planning passes (including autotune).
std::vector<std::string> allPassNames();

} // namespace compiler
} // namespace parrec

#endif // PARREC_COMPILER_PIPELINE_H
