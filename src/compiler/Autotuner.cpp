//===- Autotuner.cpp - Cost-model schedule autotuning -------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "compiler/Autotuner.h"

#include "exec/Table.h"
#include "gpu/CostModel.h"
#include "obs/Metrics.h"
#include "solver/ScheduleSynthesis.h"

#include <algorithm>

using namespace parrec;
using namespace parrec::compiler;
using solver::DomainBox;
using solver::RecurrenceSpec;
using solver::Schedule;

namespace {

/// Candidate schedules beyond this are ignored; the enumeration is tiny
/// for every practical recursion (n <= 3 dimensions), this is a guard
/// against pathological inputs.
constexpr size_t MaxCandidateSchedules = 12;

/// Probe-domain volume cap. Boxes at or below it are scored exactly;
/// larger boxes are shrunk with their aspect ratio preserved, so the
/// score ranks candidates rather than predicting absolute cycles.
constexpr uint64_t MaxScorePoints = 1ull << 20;

DomainBox scoreBoxFor(const DomainBox &Box, bool &Probe) {
  Probe = false;
  if (Box.totalPoints() <= MaxScorePoints)
    return Box;
  Probe = true;
  DomainBox P = Box;
  while (P.totalPoints() > MaxScorePoints) {
    bool Shrunk = false;
    for (unsigned D = 0; D != P.numDims(); ++D) {
      int64_t E = P.extent(D);
      if (E > 2) {
        P.Upper[D] = P.Lower[D] + E / 2 - 1;
        Shrunk = true;
      }
    }
    if (!Shrunk)
      break;
  }
  return P;
}

/// Cells per partition of \p S over \p Box, by exhaustive walk (the box
/// is probe-clamped first). Index i holds partition minOver + i.
std::vector<uint64_t> partitionHistogram(const Schedule &S,
                                         const DomainBox &Box) {
  int64_t Min = S.minOver(Box);
  int64_t Max = S.maxOver(Box);
  std::vector<uint64_t> Hist(static_cast<size_t>(Max - Min + 1), 0);
  if (Box.numDims() == 0)
    return Hist;
  std::vector<int64_t> X = Box.Lower;
  for (;;) {
    ++Hist[static_cast<size_t>(S.apply(X) - Min)];
    unsigned D = Box.numDims();
    for (;;) {
      if (D == 0)
        return Hist;
      --D;
      if (++X[D] <= Box.Upper[D])
        break;
      X[D] = Box.Lower[D];
    }
  }
}

/// A coarse, schedule-invariant per-cell cost: one table write, one
/// model read, and per recursive call as many table reads as the call's
/// free dimensions expand to (a reduction over k states reads k cells).
/// Only its ratio to the barrier cost matters — it is identical across
/// candidates, so it scales the work term without biasing the ranking.
gpu::CostCounter estimateCellCost(const RecurrenceSpec &Rec,
                                  const DomainBox &Box) {
  gpu::CostCounter C;
  C.TableWrites = 1;
  C.ModelReads = 1;
  C.Ops = 4;
  for (const solver::DescentFunction &Call : Rec.Calls) {
    uint64_t Reads = 1;
    for (unsigned D = 0; D != Box.numDims(); ++D)
      if (Call.isFreeDim(D))
        Reads *= static_cast<uint64_t>(std::max<int64_t>(Box.extent(D), 1));
    C.TableReads += Reads;
    C.Ops += 2 * Reads;
  }
  return C;
}

uint64_t fullTableBytes(const DomainBox &Box) {
  return Box.totalPoints() * sizeof(double);
}

/// Mirrors SlidingWindowTable's footprint: depth+1 planes, each the box
/// with the dropped dimension removed.
uint64_t windowTableBytes(const DomainBox &Box, int64_t Depth,
                          unsigned DropDim) {
  uint64_t Plane = 1;
  for (unsigned D = 0; D != Box.numDims(); ++D)
    if (D != DropDim)
      Plane *= static_cast<uint64_t>(Box.extent(D));
  return (static_cast<uint64_t>(Depth) + 1) * Plane * sizeof(double);
}

/// Modelled busiest-block cycles of one combination, mirroring the
/// simulator: per partition, the slowest thread's striped share of the
/// cells at the per-cell cost, plus one barrier per partition.
uint64_t modelCycles(const std::vector<uint64_t> &Hist, uint64_t PerCell,
                     unsigned Threads, const gpu::CostModel &Model) {
  uint64_t Cycles = 0;
  for (uint64_t Cells : Hist)
    Cycles += ((Cells + Threads - 1) / Threads) * PerCell +
              Model.SyncCycles;
  return Cycles;
}

} // namespace

AutotuneChoice compiler::tuneSchedule(const RecurrenceSpec &Rec,
                                      const DomainBox &Box,
                                      const exec::PlanRequest &Req,
                                      const Schedule &Default) {
  static const gpu::CostModel FallbackModel{};
  const gpu::CostModel &Model =
      Req.CostModel ? *Req.CostModel : FallbackModel;

  // The candidate schedule set, default first so it wins ties. A
  // user-forced schedule is never overridden — only its window and
  // thread count are tuned.
  std::vector<Schedule> Schedules = {Default};
  if (!Req.ForcedSchedule) {
    for (Schedule &S : solver::enumerateCandidateSchedules(Rec, Box)) {
      if (Schedules.size() >= MaxCandidateSchedules)
        break;
      if (std::find(Schedules.begin(), Schedules.end(), S) ==
          Schedules.end())
        Schedules.push_back(std::move(S));
    }
  }

  bool MayWindow = Req.UseSlidingWindow && !Req.KeepTable;
  bool Probe = false;
  DomainBox ScoreBox = scoreBoxFor(Box, Probe);
  gpu::CostCounter CellCost = estimateCellCost(Rec, Box);

  unsigned DefaultThreads = Model.CoresPerMultiprocessor;
  std::vector<unsigned> ThreadChoices = {DefaultThreads};
  if (DefaultThreads / 2 > 0)
    ThreadChoices.push_back(DefaultThreads / 2);

  AutotuneChoice Best;
  bool HaveBest = false;
  uint64_t Evaluated = 0;
  for (const Schedule &S : Schedules) {
    std::optional<int64_t> Depth = solver::slidingWindowDepth(Rec, S);
    int DropDim = Depth ? exec::pickWindowDropDim(S, Box) : -1;
    bool WindowLegal = MayWindow && Depth && DropDim >= 0;
    // Window-on first: it is the untuned pipeline's choice when legal.
    std::vector<bool> WindowChoices =
        WindowLegal ? std::vector<bool>{true, false}
                    : std::vector<bool>{false};

    std::vector<uint64_t> Hist = partitionHistogram(S, ScoreBox);
    for (bool Window : WindowChoices) {
      uint64_t Bytes =
          Window ? windowTableBytes(Box, *Depth,
                                    static_cast<unsigned>(DropDim))
                 : fullTableBytes(Box);
      bool InShared = Bytes <= Model.SharedMemBytes;
      uint64_t PerCell = Model.gpuCellCycles(CellCost, InShared);
      for (unsigned Threads : ThreadChoices) {
        uint64_t Cycles = modelCycles(Hist, PerCell, Threads, Model);
        ++Evaluated;
        // Strict improvement only: the first (default) combination
        // survives every tie, so tuning never regresses the model score.
        if (!HaveBest || Cycles < Best.ModelledCycles) {
          Best.Sched = S;
          Best.UseWindow = Window;
          Best.Threads = Threads;
          Best.ModelledCycles = Cycles;
          HaveBest = true;
        }
      }
    }
  }
  Best.CandidatesEvaluated = Evaluated;
  return Best;
}

void compiler::autotunePlan(CompilationModule &M, obs::Span &S) {
  AutotuneChoice Choice = tuneSchedule(M.recurrence(), *M.Box, M.Request,
                                       M.Plan->Sched);
  bool Changed = !(Choice.Sched == M.Plan->Sched);
  M.Plan->Sched = Choice.Sched;
  M.WindowOverride = Choice.UseWindow;
  M.Plan->TunedThreads = Choice.Threads;

  obs::MetricsRegistry &Reg = obs::MetricsRegistry::global();
  Reg.add("compile.autotune.runs");
  Reg.add("compile.autotune.candidates", Choice.CandidatesEvaluated);
  Reg.record("compile.autotune.modelled_cycles",
             static_cast<double>(Choice.ModelledCycles));

  if (S.active()) {
    S.arg("candidates", Choice.CandidatesEvaluated);
    S.arg("schedule", Choice.Sched.str(M.DimNames.empty()
                                           ? M.recurrence().DimNames
                                           : M.DimNames));
    S.arg("window", Choice.UseWindow);
    S.arg("threads", Choice.Threads);
    S.arg("modelled_cycles", Choice.ModelledCycles);
    S.arg("changed", Changed);
  }
}
