//===- Pipeline.cpp - The compiler pass pipeline ------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"

#include "codegen/Evaluator.h"
#include "codegen/NativeJit.h"
#include "compiler/Autotuner.h"
#include "exec/Table.h"
#include "lang/Parser.h"
#include "obs/Metrics.h"
#include "poly/LoopGen.h"
#include "solver/ScheduleSynthesis.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>

using namespace parrec;
using namespace parrec::compiler;

//===----------------------------------------------------------------------===//
// Disabled passes (process-global debugging knob)
//===----------------------------------------------------------------------===//

namespace {
std::mutex DisabledMutex;
std::vector<std::string> DisabledPasses;
// Fast path: pipelines check one relaxed atomic before taking the lock,
// so the knob costs nothing when unused (the common case).
std::atomic<bool> AnyDisabled{false};
} // namespace

void compiler::setDisabledPasses(std::vector<std::string> Names) {
  std::lock_guard<std::mutex> Lock(DisabledMutex);
  DisabledPasses = std::move(Names);
  AnyDisabled.store(!DisabledPasses.empty(), std::memory_order_relaxed);
}

std::vector<std::string> compiler::disabledPasses() {
  std::lock_guard<std::mutex> Lock(DisabledMutex);
  return DisabledPasses;
}

bool compiler::isPassDisabled(std::string_view Name) {
  if (!AnyDisabled.load(std::memory_order_relaxed))
    return false;
  std::lock_guard<std::mutex> Lock(DisabledMutex);
  return std::find(DisabledPasses.begin(), DisabledPasses.end(), Name) !=
         DisabledPasses.end();
}

//===----------------------------------------------------------------------===//
// PassPipeline
//===----------------------------------------------------------------------===//

bool PassPipeline::run(CompilationModule &M) const {
  for (const Pass &P : Passes) {
    if (isPassDisabled(P.Name))
      continue;
    if (P.Skip && P.Skip(M))
      continue;
    auto T0 = std::chrono::steady_clock::now();
    bool Ok;
    {
      obs::Span PassSpan("compile." + P.Name, "compiler");
      Ok = P.Run(M, PassSpan);
    }
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
    obs::MetricsRegistry::global().record("compile.pass." + P.Name + ".ns",
                                          static_cast<double>(Ns));
    obs::MetricsRegistry::global().add("compile.pass_runs",
                                       obs::Labels{{"pass", P.Name}});
    if (!Ok)
      return false;
  }
  return true;
}

std::vector<std::string> PassPipeline::passNames() const {
  std::vector<std::string> Names;
  Names.reserve(Passes.size());
  for (const Pass &P : Passes)
    Names.push_back(P.Name);
  return Names;
}

//===----------------------------------------------------------------------===//
// Frontend passes
//===----------------------------------------------------------------------===//

namespace {

/// Guard helper: report a missing prerequisite (almost always a disabled
/// upstream pass) instead of crashing.
bool missing(CompilationModule &M, const char *PassName,
             const char *What) {
  M.Diags.error({}, std::string("pass '") + PassName + "' requires " +
                        What + " (was an earlier pass disabled?)");
  return false;
}

bool passParse(CompilationModule &M, obs::Span &S) {
  if (!M.Source)
    return missing(M, "parse", "DSL source");
  lang::Parser P(*M.Source, M.Diags);
  M.Decl = P.parseFunctionOnly();
  if (!M.Decl || M.Diags.hasErrors())
    return false;
  if (S.active())
    S.arg("function", M.Decl->Name);
  return true;
}

bool passSema(CompilationModule &M, obs::Span &S) {
  if (!M.Decl)
    return missing(M, "sema", "a parsed function");
  if (S.active())
    S.arg("function", M.Decl->Name);
  lang::Sema Sema(M.Diags, M.Alphabets);
  M.Info = Sema.analyzeTypes(*M.Decl);
  return M.Info.has_value();
}

bool passDependence(CompilationModule &M, obs::Span &S) {
  if (!M.Decl || !M.Info)
    return missing(M, "dependence", "sema results");
  lang::Sema Sema(M.Diags, M.Alphabets);
  if (!Sema.analyzeDependence(*M.Decl, *M.Info))
    return false;
  if (S.active())
    S.arg("recursive_calls",
          static_cast<uint64_t>(M.Info->Recurrence.Calls.size()));
  return true;
}

bool passValidate(CompilationModule &M, obs::Span &) {
  if (!M.Decl)
    return missing(M, "validate", "a parsed function");
  return codegen::validateForExecution(*M.Decl, M.Diags);
}

bool passBytecode(CompilationModule &M, obs::Span &S) {
  if (!M.Decl || !M.Info)
    return missing(M, "bytecode", "sema results");
  if (S.active())
    S.arg("function", M.Decl->Name);
  // A null program is not an error: the backend falls back to the AST
  // evaluator for unsupported constructs.
  M.Bytecode = codegen::compileToBytecode(*M.Decl, *M.Info);
  if (S.active()) {
    S.arg("compiled", M.Bytecode != nullptr);
    if (M.Bytecode)
      S.arg("instructions",
            static_cast<uint64_t>(M.Bytecode->Code.size()));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Planning passes
//===----------------------------------------------------------------------===//

bool passScheduleSynthesis(CompilationModule &M, obs::Span &S) {
  if (!M.Box || !M.Plan)
    return missing(M, "schedule_synthesis", "a planning request");
  const solver::RecurrenceSpec &Rec = M.recurrence();
  if (S.active()) {
    S.arg("function", Rec.Name);
    S.arg("dims", static_cast<uint64_t>(M.Box->numDims()));
  }
  // Forced, preselected (batch), or freshly minimised — the same
  // precedence the hardwired chain applied.
  if (M.Request.ForcedSchedule) {
    if (!solver::verifySchedule(Rec, *M.Request.ForcedSchedule, *M.Box,
                                M.Diags))
      return false;
    M.Plan->Sched = *M.Request.ForcedSchedule;
  } else if (M.Request.PreselectedSchedule) {
    M.Plan->Sched = *M.Request.PreselectedSchedule;
  } else {
    std::optional<solver::Schedule> Minimal =
        solver::findMinimalSchedule(Rec, *M.Box, M.Diags);
    if (!Minimal)
      return false;
    M.Plan->Sched = std::move(*Minimal);
  }
  if (S.active())
    S.arg("schedule",
          M.Plan->Sched.str(M.DimNames.empty() ? Rec.DimNames : M.DimNames));
  return true;
}

bool passAutotune(CompilationModule &M, obs::Span &S) {
  if (!M.Box || !M.Plan)
    return missing(M, "autotune", "a planning request");
  if (M.Plan->Sched.Coefficients.size() != M.Box->numDims())
    return missing(M, "autotune", "a resolved schedule");
  autotunePlan(M, S);
  return true;
}

bool passSlidingWindow(CompilationModule &M, obs::Span &S) {
  if (!M.Box || !M.Plan)
    return missing(M, "sliding_window", "a planning request");
  if (M.Plan->Sched.Coefficients.size() != M.Box->numDims())
    return missing(M, "sliding_window", "a resolved schedule");
  // Section 4.8: compress the table when enabled and legal. Keeping the
  // full table for later reads forbids the window, and the autotuner may
  // veto it when full tabulation scores better.
  bool Want = M.Request.UseSlidingWindow && !M.Request.KeepTable;
  if (M.WindowOverride)
    Want = Want && *M.WindowOverride;
  std::optional<int64_t> Window =
      solver::slidingWindowDepth(M.recurrence(), M.Plan->Sched);
  int DropDim =
      Window ? exec::pickWindowDropDim(M.Plan->Sched, *M.Box) : -1;
  if (Want && Window && DropDim >= 0) {
    M.Plan->UseWindow = true;
    M.Plan->WindowDepth = *Window;
    M.Plan->WindowDropDim = static_cast<unsigned>(DropDim);
  }
  if (S.active()) {
    S.arg("window", M.Plan->UseWindow);
    if (M.Plan->UseWindow)
      S.arg("depth", static_cast<uint64_t>(M.Plan->WindowDepth));
  }
  return true;
}

bool passLoopGen(CompilationModule &M, obs::Span &S) {
  if (!M.Box || !M.Plan)
    return missing(M, "loopgen", "a planning request");
  if (M.Plan->Sched.Coefficients.size() != M.Box->numDims())
    return missing(M, "loopgen", "a resolved schedule");
  // Section 4.3: scan the box under the schedule, CLooG-style.
  poly::Polyhedron Domain(M.DimNames);
  for (unsigned D = 0; D != M.Box->numDims(); ++D)
    Domain.addBounds(D, M.Box->Lower[D], M.Box->Upper[D]);
  M.Plan->Nest = poly::generateLoops(Domain, /*NumParams=*/0,
                                     M.Plan->Sched.toAffineExpr(0));
  if (S.active())
    S.arg("dims", static_cast<uint64_t>(M.Box->numDims()));
  return true;
}

bool passFinalize(CompilationModule &M, obs::Span &S) {
  if (!M.Box || !M.Plan)
    return missing(M, "finalize", "a planning request");
  auto TimeRange = M.Plan->Nest.timeRange({});
  if (!TimeRange) {
    M.Diags.error({}, "empty domain for '" + M.recurrence().Name + "'");
    return false;
  }
  M.Plan->FirstPartition = TimeRange->first;
  M.Plan->LastPartition = TimeRange->second;
  M.Plan->RootPartition = M.Plan->Sched.apply(M.Box->Upper);
  if (S.active())
    S.arg("partitions", static_cast<uint64_t>(M.Plan->numPartitions()));
  return true;
}

bool passJit(CompilationModule &M, obs::Span &S) {
  if (!M.Box || !M.Plan)
    return missing(M, "jit", "a planning request");
  codegen::JitCompileOptions Opts;
  Opts.CacheDir = M.Request.JitCacheDir;
  // compileKernel owns the fallback path: on any failure it warns once,
  // bumps jit.fallbacks and returns null, and the backend keeps using
  // the bytecode VM — a JIT problem never fails compilation.
  M.Plan->Kernel = codegen::compileKernel(*M.Plan, Opts);
  if (S.active())
    S.arg("compiled", M.Plan->Kernel != nullptr);
  return true;
}

PassPipeline makeFrontendPipeline() {
  PassPipeline P;
  P.addPass(Pass{"parse",
                 [](const CompilationModule &M) { return M.Decl != nullptr; },
                 passParse});
  P.addPass("sema", passSema);
  P.addPass("dependence", passDependence);
  P.addPass("validate", passValidate);
  P.addPass("bytecode", passBytecode);
  return P;
}

PassPipeline makePlanningPipeline(bool Autotune, bool Jit) {
  PassPipeline P;
  P.addPass("schedule_synthesis", passScheduleSynthesis);
  if (Autotune)
    P.addPass("autotune", passAutotune);
  P.addPass("sliding_window", passSlidingWindow);
  P.addPass("loopgen", passLoopGen);
  P.addPass("finalize", passFinalize);
  if (Jit)
    P.addPass("jit", passJit);
  return P;
}

} // namespace

const PassPipeline &compiler::frontendPipeline() {
  static const PassPipeline P = makeFrontendPipeline();
  return P;
}

const PassPipeline &compiler::planningPipeline() {
  static const PassPipeline P =
      makePlanningPipeline(/*Autotune=*/false, /*Jit=*/false);
  return P;
}

const PassPipeline &compiler::autotunePlanningPipeline() {
  static const PassPipeline P =
      makePlanningPipeline(/*Autotune=*/true, /*Jit=*/false);
  return P;
}

const PassPipeline &compiler::jitPlanningPipeline() {
  static const PassPipeline P =
      makePlanningPipeline(/*Autotune=*/false, /*Jit=*/true);
  return P;
}

const PassPipeline &compiler::autotuneJitPlanningPipeline() {
  static const PassPipeline P =
      makePlanningPipeline(/*Autotune=*/true, /*Jit=*/true);
  return P;
}

bool compiler::runFrontend(CompilationModule &M) {
  return frontendPipeline().run(M);
}

std::vector<std::string> compiler::allPassNames() {
  std::vector<std::string> Names = frontendPipeline().passNames();
  // The autotune+jit variant registers the full planning superset.
  for (std::string &N : autotuneJitPlanningPipeline().passNames())
    Names.push_back(std::move(N));
  return Names;
}

bool compiler::isKnownPass(std::string_view Name) {
  for (const std::string &N : allPassNames())
    if (N == Name)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// exec::buildPlan — the planning entry point, now a pipeline wrapper
//===----------------------------------------------------------------------===//

std::optional<exec::ExecutablePlan>
exec::buildPlan(const solver::RecurrenceSpec &Rec,
                const std::vector<std::string> &DimNames,
                const solver::DomainBox &Box, const PlanRequest &Req,
                DiagnosticEngine &Diags) {
  obs::Span PlanSpan("exec.build_plan", "exec");
  if (PlanSpan.active()) {
    PlanSpan.arg("function", Rec.Name);
    PlanSpan.arg("dims", static_cast<uint64_t>(Box.numDims()));
    PlanSpan.arg("autotune", Req.Autotune);
  }
  CompilationModule M(Diags);
  M.Recurrence = &Rec;
  M.DimNames = DimNames;
  M.Box = Box;
  M.Request = Req;
  M.Plan.emplace();
  M.Plan->Box = Box;
  M.Plan->Program = Req.Program;
  const PassPipeline &Pipeline =
      Req.Autotune
          ? (Req.Jit ? compiler::autotuneJitPlanningPipeline()
                     : compiler::autotunePlanningPipeline())
          : (Req.Jit ? compiler::jitPlanningPipeline()
                     : compiler::planningPipeline());
  if (!Pipeline.run(M))
    return std::nullopt;
  return std::move(M.Plan);
}
