//===- Autotuner.h - Cost-model schedule autotuning ---------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The schedule autotuner pass. The paper fixes one feasible schedule
/// per recurrence; the simulator's deterministic cost model makes it
/// cheap to *search* instead: enumerate candidate affine schedules
/// (minimal, conditional, unit-coefficient), sliding-window choices and
/// block thread counts, score every combination with the modelled-cycle
/// cost of the simulated GPU on a (probe-clamped) domain, and store the
/// winner on the ExecutablePlan. PlanCache keys include the autotune
/// flag, so cache hits skip the search entirely and the second compile
/// of a shape evaluates zero candidates.
///
/// The default configuration is always a candidate and wins ties, so an
/// autotuned plan never scores worse than the untuned one under the
/// model. Results are unaffected by construction — schedules, windows
/// and thread counts change only how (and how fast) the table is
/// filled, never its contents.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_COMPILER_AUTOTUNER_H
#define PARREC_COMPILER_AUTOTUNER_H

#include "compiler/Pipeline.h"

namespace parrec {
namespace compiler {

/// The autotuner's pick for one planning request.
struct AutotuneChoice {
  solver::Schedule Sched;
  bool UseWindow = false;
  unsigned Threads = 0;
  /// Modelled busiest-block cycles of the winning combination.
  uint64_t ModelledCycles = 0;
  /// Number of (schedule, window, threads) combinations scored.
  uint64_t CandidatesEvaluated = 0;
};

/// Scores candidate (schedule, window, threads) combinations for the
/// module's box and returns the winner. \p Default is the configuration
/// the untuned pipeline would use; it is scored first and wins ties.
AutotuneChoice tuneSchedule(const solver::RecurrenceSpec &Rec,
                            const solver::DomainBox &Box,
                            const exec::PlanRequest &Req,
                            const solver::Schedule &Default);

/// The autotune pass body: runs tuneSchedule against the already
/// resolved default schedule, rewrites the module's schedule/window
/// decision/thread count, and bumps the compile.autotune.* metrics
/// (compile.autotune.candidates counts scored combinations — a PlanCache
/// hit leaves it untouched).
void autotunePlan(CompilationModule &M, obs::Span &S);

} // namespace compiler
} // namespace parrec

#endif // PARREC_COMPILER_AUTOTUNER_H
