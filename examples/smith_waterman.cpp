//===- smith_waterman.cpp - Protein database search example --------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 6.1 case study as a library client: a Smith-Waterman
/// database search written in the DSL with the substitution-matrix
/// extension, run as one problem per multiprocessor on the simulated
/// GPU, cross-checked against the serial CPU baseline, and compared on
/// modelled time.
///
/// Build and run:  ./build/examples/smith_waterman
///
//===----------------------------------------------------------------------===//

#include "baselines/SmithWaterman.h"
#include "bio/Fasta.h"
#include "runtime/CompiledRecurrence.h"

#include <cstdio>

using namespace parrec;
using codegen::ArgValue;

int main() {
  const char *Source =
      "int sw(matrix[protein] m, seq[protein] a, index[a] i,\n"
      "       seq[protein] b, index[b] j) =\n"
      "  if i == 0 then 0\n"
      "  else if j == 0 then 0\n"
      "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n"
      "       max (sw(i-1, j) - 4) max (sw(i, j-1) - 4)\n";

  DiagnosticEngine Diags;
  auto Compiled = runtime::CompiledRecurrence::compile(Source, Diags);
  if (!Compiled) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  // A query against a small synthetic protein database. The alignment
  // score is the maximum over the whole DP table, so results use
  // RunResult::TableMax.
  bio::Sequence Query = bio::randomSequence(bio::Alphabet::protein(), 120,
                                            /*Seed=*/7, "query");
  bio::SequenceDatabase Db =
      bio::randomDatabase(bio::Alphabet::protein(), 40, 60, 300,
                          /*Seed=*/8);
  // Plant a strong hit: subject 17 contains the query itself.
  Db[17] = bio::Sequence("planted", Db[17].data().substr(0, 50) +
                                        Query.data() +
                                        Db[17].data().substr(50));

  const bio::SubstitutionMatrix &Blosum =
      bio::SubstitutionMatrix::blosum62();
  std::vector<std::vector<ArgValue>> Problems;
  for (const bio::Sequence &Subject : Db)
    Problems.push_back({ArgValue::ofMatrix(&Blosum),
                        ArgValue::ofSeq(&Query), ArgValue(),
                        ArgValue::ofSeq(&Subject), ArgValue()});

  gpu::Device Device;
  auto Batch = Compiled->runGpuBatch(Problems, Device, Diags);
  if (!Batch) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  // Cross-check against the hand-written CPU implementation and find the
  // best hit.
  baselines::SwParams Params;
  Params.Matrix = &Blosum;
  Params.GapPenalty = 4;
  auto CpuResult = baselines::searchSmithWatermanCpu(
      Query, Db, Params, Device.costModel());

  size_t BestIndex = 0;
  for (size_t I = 0; I != Db.size(); ++I) {
    int Gpu = static_cast<int>(Batch->Problems[I].TableMax);
    if (Gpu != CpuResult.Scores[I]) {
      std::fprintf(stderr,
                   "mismatch on %s: GPU %d vs CPU %d\n",
                   Db[I].name().c_str(), Gpu, CpuResult.Scores[I]);
      return 1;
    }
    if (Gpu > static_cast<int>(Batch->Problems[BestIndex].TableMax))
      BestIndex = I;
  }

  std::printf("searched %zu subjects against a %lld-residue query\n",
              Db.size(), static_cast<long long>(Query.length()));
  std::printf("best hit: %s (score %d)\n", Db[BestIndex].name().c_str(),
              static_cast<int>(Batch->Problems[BestIndex].TableMax));
  std::printf("every score matches the serial CPU baseline\n");
  std::printf("schedule used: S_sw(i, j) = %s\n",
              Batch->Problems[0].UsedSchedule.str({"i", "j"}).c_str());
  std::printf("modelled GPU time: %.3f ms  |  modelled CPU time: "
              "%.3f ms  (x%.1f)\n",
              Batch->Seconds * 1e3, CpuResult.Seconds * 1e3,
              CpuResult.Seconds / Batch->Seconds);
  return 0;
}
