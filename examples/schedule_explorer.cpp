//===- schedule_explorer.cpp - Visualising schedules ---------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays the paper's schedule discussion interactively: renders the
/// partitionings of Figures 3 and 4 as ASCII grids, verifies user
/// schedules against the dependency criteria (Section 4.5), shows the
/// CSP-derived minimal schedule for several recursions (Section 4.6),
/// and the conditional schedule sets of Section 4.7.
///
/// Build and run:  ./build/examples/schedule_explorer
///
/// To have the compiler *search* this space instead of exploring it by
/// hand, run `parrec run --autotune <script>`: the schedule autotuner
/// (DESIGN.md §9) scores candidate schedules, sliding-window choices
/// and thread counts with the simulator's cost model and caches the
/// winner on the plan.
///
//===----------------------------------------------------------------------===//

#include "solver/ScheduleSynthesis.h"

#include <cstdio>

using namespace parrec;
using namespace parrec::solver;

namespace {

DescentFunction uniformDescent(std::vector<int64_t> Offsets) {
  DescentFunction D;
  unsigned N = static_cast<unsigned>(Offsets.size());
  for (unsigned I = 0; I != N; ++I) {
    poly::AffineExpr C = poly::AffineExpr::dim(N, I);
    C.setConstantTerm(Offsets[I]);
    D.Components.push_back(C);
  }
  return D;
}

/// Prints the partition number of every cell of a W x H grid under S —
/// the pictures of Figures 3 and 4.
void renderPartitions(const Schedule &S, int64_t W, int64_t H) {
  std::printf("     ");
  for (int64_t X = 0; X != W; ++X)
    std::printf("%3lld", static_cast<long long>(X));
  std::printf("  (x ->)\n");
  for (int64_t Y = 0; Y != H; ++Y) {
    std::printf("  y=%lld", static_cast<long long>(Y));
    for (int64_t X = 0; X != W; ++X)
      std::printf("%3lld",
                  static_cast<long long>(S.apply({X, Y})));
    std::printf("\n");
  }
}

void exploreRecursion(const char *Title, const RecurrenceSpec &Spec,
                      const DomainBox &Box) {
  std::printf("== %s ==\n", Title);
  std::printf("calls:");
  for (const DescentFunction &Call : Spec.Calls)
    std::printf("  %s", Call.str(Spec.DimNames).c_str());
  std::printf("\n");

  DiagnosticEngine Diags;
  auto S = findMinimalSchedule(Spec, Box, Diags);
  if (!S) {
    std::printf("no valid schedule: dependencies are cyclic\n\n");
    return;
  }
  std::printf("minimal schedule: S = %s, %lld partitions\n",
              S->str(Spec.DimNames).c_str(),
              static_cast<long long>(S->partitionCount(Box)));
  if (Spec.numDims() == 2 && Box.extent(0) <= 8 && Box.extent(1) <= 8)
    renderPartitions(*S, Box.extent(0), Box.extent(1));

  if (Spec.allUniform()) {
    auto Candidates = findConditionalSchedules(Spec, Diags);
    if (Candidates) {
      std::printf("conditional candidates (Section 4.7):");
      for (const ConditionalSchedule &C : *Candidates)
        std::printf("  %s", C.S.str(Spec.DimNames).c_str());
      std::printf("\n");
    }
  }
  std::printf("\n");
}

} // namespace

int main() {
  // Figure 3: the 3x3 edit-distance problem, five diagonal partitions.
  RecurrenceSpec EditDistance;
  EditDistance.Name = "d";
  EditDistance.DimNames = {"x", "y"};
  EditDistance.Calls = {uniformDescent({-1, 0}), uniformDescent({0, -1}),
                        uniformDescent({-1, -1})};
  exploreRecursion("edit distance (Figures 1-3)", EditDistance,
                   DomainBox::fromExtents({3, 3}));

  // Figure 4: three strategies for the diagonal-only recursion; which
  // one is minimal depends on the domain shape.
  RecurrenceSpec Diagonal;
  Diagonal.Name = "f";
  Diagonal.DimNames = {"x", "y"};
  Diagonal.Calls = {uniformDescent({-1, -1})};
  exploreRecursion("diagonal recursion, wide domain (Figure 4a)",
                   Diagonal, DomainBox::fromExtents({7, 6}));
  exploreRecursion("diagonal recursion, tall domain (Figure 4b)",
                   Diagonal, DomainBox::fromExtents({6, 7}));

  // Fibonacci: every partition has exactly one element (Figure 2b).
  RecurrenceSpec Fib;
  Fib.Name = "fib";
  Fib.DimNames = {"x"};
  Fib.Calls = {uniformDescent({-1}), uniformDescent({-2})};
  exploreRecursion("fibonacci (Figure 2b: no parallelism)", Fib,
                   DomainBox::fromExtents({8}));

  // Verifying a user-provided schedule (Section 4.5).
  DiagnosticEngine Diags;
  DomainBox Box = DomainBox::fromExtents({6, 6});
  std::printf("== user schedule verification (Section 4.5) ==\n");
  for (Schedule S : {Schedule{{1, 1}}, Schedule{{2, 1}},
                     Schedule{{1, 0}}}) {
    DiagnosticEngine Local;
    bool Valid = verifySchedule(EditDistance, S, Box, Local);
    std::printf("S = %-8s : %s\n", S.str({"x", "y"}).c_str(),
                Valid ? "valid" : "rejected");
    if (!Valid)
      std::printf("    %s", Local.str().c_str());
  }
  (void)Diags;
  return 0;
}
