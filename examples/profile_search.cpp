//===- profile_search.cpp - Profile-HMM database search example ----------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 6.3 case study: database search against a profile HMM with
/// the full forward algorithm. Shows the model-preparation step (silent
/// delete states eliminated into an emitting-only model), batch execution
/// across multiprocessors, and a side-by-side with the GPU-HMMER-style
/// inter-task port sharing the same numeric core.
///
/// Build and run:  ./build/examples/profile_search
///
//===----------------------------------------------------------------------===//

#include "baselines/HmmBaselines.h"
#include "bio/Fasta.h"
#include "bio/HmmZoo.h"
#include "runtime/CompiledRecurrence.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace parrec;
using codegen::ArgValue;

int main() {
  const char *Source =
      "prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =\n"
      "  if i == 0 then\n"
      "    if s.isstart then 1.0 else 0.0\n"
      "  else\n"
      "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
      "    sum(t in s.transitionsto : t.prob * forward(t.start, "
      "i - 1))\n";

  DiagnosticEngine Diags;
  auto Compiled = runtime::CompiledRecurrence::compile(Source, Diags);
  if (!Compiled) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  // A 12-position profile; delete states are silent, so the model is
  // normalised to emitting-only form before scoring (DESIGN.md).
  bio::Hmm Raw = bio::makeProfileHmm(12, bio::Alphabet::protein(),
                                     /*Seed=*/2012);
  auto Model = bio::eliminateSilentStates(Raw, Diags);
  if (!Model) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  std::printf("profile: %u states raw -> %u emitting states\n",
              Raw.numStates(), Model->numStates());

  // Database: random proteins plus sequences sampled from the profile.
  bio::SequenceDatabase Db =
      bio::randomDatabase(bio::Alphabet::protein(), 60, 10, 24,
                          /*Seed=*/77);
  for (uint64_t Seed = 0; Seed != 6; ++Seed) {
    std::string Member = Model->sample(500 + Seed);
    if (!Member.empty())
      Db.emplace_back("family" + std::to_string(Seed),
                      std::move(Member));
  }

  std::vector<std::vector<ArgValue>> Problems;
  for (const bio::Sequence &Seq : Db)
    Problems.push_back({ArgValue::ofHmm(&*Model), ArgValue(),
                        ArgValue::ofSeq(&Seq), ArgValue()});

  gpu::Device Device;
  auto Batch = Compiled->runGpuBatch(Problems, Device, Diags);
  if (!Batch) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  // GPU-HMMER-style scoring of the same database: identical numbers.
  auto Port = baselines::searchGpuHmmer(*Model, Db, Device);
  double MaxDelta = 0.0;
  for (size_t I = 0; I != Db.size(); ++I)
    MaxDelta = std::max(MaxDelta,
                        std::abs(Batch->Problems[I].RootValue -
                                 Port.LogLikelihoods[I]));

  // Rank by length-normalised log-likelihood; family members surface.
  std::vector<size_t> Order(Db.size());
  for (size_t I = 0; I != Db.size(); ++I)
    Order[I] = I;
  auto Normalised = [&](size_t I) {
    return Batch->Problems[I].RootValue /
           static_cast<double>(std::max<int64_t>(1, Db[I].length()));
  };
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Normalised(A) > Normalised(B);
  });

  std::printf("\ntop hits (length-normalised log-likelihood):\n");
  for (size_t Rank = 0; Rank != 8; ++Rank) {
    size_t I = Order[Rank];
    std::printf("  %2zu. %-10s len %3lld  %8.3f\n", Rank + 1,
                Db[I].name().c_str(),
                static_cast<long long>(Db[I].length()), Normalised(I));
  }

  std::printf("\nGPU-HMMER port agrees to %.2e on every sequence\n",
              MaxDelta);
  std::printf("modelled time: ParRec %.3f ms, GPU-HMMER-style %.3f ms\n",
              Batch->Seconds * 1e3, Port.Seconds * 1e3);
  return 0;
}
