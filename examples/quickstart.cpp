//===- quickstart.cpp - ParRec in five minutes ---------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole pipeline on the paper's running example (edit distance,
/// Figure 7): compile the recursion, inspect the automatically derived
/// schedule and generated loop nests, execute on the modelled CPU and the
/// simulated GPU, and print the synthesized CUDA kernel.
///
/// Build and run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "bio/Fasta.h"
#include "codegen/CudaEmitter.h"
#include "poly/CPrinter.h"
#include "poly/LoopGen.h"
#include "runtime/CompiledRecurrence.h"

#include <cstdio>

using namespace parrec;
using codegen::ArgValue;

int main() {
  // 1. The recursion, written the way the paper's Figure 7 writes it.
  const char *Source =
      "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
      "  if i == 0 then j\n"
      "  else if j == 0 then i\n"
      "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
      "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1\n";

  DiagnosticEngine Diags;
  auto Compiled = runtime::CompiledRecurrence::compile(Source, Diags);
  if (!Compiled) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  std::printf("compiled: %s\n\n",
              Compiled->decl().signatureStr().c_str());

  // 2. Bind a problem. Recursive parameters (the indices) stay unbound:
  //    their domains come from the sequences.
  bio::Sequence S("s", "kitten");
  bio::Sequence T("t", "sitting");
  std::vector<ArgValue> Args = {ArgValue::ofSeq(&S), ArgValue(),
                                ArgValue::ofSeq(&T), ArgValue()};

  // 3. The automatically derived schedule (Section 4.6).
  auto Box = Compiled->domainFor(Args, Diags);
  auto Schedule = Compiled->scheduleFor(*Box, Diags);
  std::printf("schedule  S_d(i, j) = %s\n",
              Schedule->str({"i", "j"}).c_str());
  std::printf("partitions: %lld (Figure 3 generalised)\n",
              static_cast<long long>(Schedule->partitionCount(*Box)));
  auto Window =
      solver::slidingWindowDepth(Compiled->info().Recurrence, *Schedule);
  std::printf("sliding window: keep %lld previous partitions\n\n",
              static_cast<long long>(*Window));

  // 4. The generated loop nest (Figures 9 and 10).
  poly::Polyhedron Domain({"i", "j"});
  Domain.addBounds(0, 0, Box->Upper[0]);
  Domain.addBounds(1, 0, Box->Upper[1]);
  poly::LoopNest Nest =
      poly::generateLoops(Domain, 0, Schedule->toAffineExpr(0));
  std::printf("-- CLooG-style scan (Figure 9) --\n%s\n",
              poly::printSequentialLoops(Nest).c_str());

  // 5. Execute: modelled CPU, then simulated GPU; identical results,
  //    different modelled time.
  gpu::Device Device;
  auto Cpu = Compiled->runCpu(Args, Device.costModel(), Diags);
  auto Gpu = Compiled->runGpu(Args, Device, Diags);
  std::printf("d(kitten, sitting) = %.0f (CPU) = %.0f (GPU)\n",
              Cpu->RootValue, Gpu->RootValue);
  std::printf("modelled CPU time: %.3f us\n",
              Device.costModel().cpuSeconds(Cpu->Cycles) * 1e6);
  std::printf("modelled GPU time: %.3f us (%llu partitions, "
              "table in %s memory)\n\n",
              Device.costModel().gpuSeconds(Gpu->Cycles) * 1e6,
              static_cast<unsigned long long>(Gpu->Metrics.Partitions),
              Gpu->Metrics.GlobalAccesses ? "global" : "shared");

  // 6. Tiny problems are barrier-dominated; at realistic sizes the
  //    parallel partitions win decisively.
  bio::Sequence BigS = bio::randomSequence(bio::Alphabet::english(),
                                           400, /*Seed=*/1, "s");
  bio::Sequence BigT = bio::randomSequence(bio::Alphabet::english(),
                                           400, /*Seed=*/2, "t");
  std::vector<ArgValue> BigArgs = {ArgValue::ofSeq(&BigS), ArgValue(),
                                   ArgValue::ofSeq(&BigT), ArgValue()};
  auto BigCpu = Compiled->runCpu(BigArgs, Device.costModel(), Diags);
  auto BigGpu = Compiled->runGpu(BigArgs, Device, Diags);
  std::printf("at 400x400: CPU %.1f us, GPU %.1f us (x%.1f)\n\n",
              Device.costModel().cpuSeconds(BigCpu->Cycles) * 1e6,
              Device.costModel().gpuSeconds(BigGpu->Cycles) * 1e6,
              Device.costModel().cpuSeconds(BigCpu->Cycles) /
                  Device.costModel().gpuSeconds(BigGpu->Cycles));

  // 7. The synthesized CUDA kernel the paper's tool would hand to nvcc.
  std::printf("-- synthesized CUDA --\n%s",
              codegen::emitCudaKernel(Compiled->decl(), Compiled->info(),
                                      *Schedule)
                  .c_str());
  return 0;
}
