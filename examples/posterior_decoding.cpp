//===- posterior_decoding.cpp - Forward-backward posterior example -------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Posterior decoding of the occasionally dishonest casino: *two*
/// synthesized GPU programs — the Figure 11 forward algorithm (schedule
/// S = i, left to right) and the backward algorithm (schedule S = -i,
/// right to left) — combined cell-by-cell through the kept DP tables to
/// give P(loaded | rolls) at every position. A classic HMM analysis,
/// here written entirely in the DSL with no hand-written DP.
///
/// Build and run:  ./build/examples/posterior_decoding
///
//===----------------------------------------------------------------------===//

#include "bio/HmmZoo.h"
#include "runtime/CompiledRecurrence.h"

#include <cmath>
#include <cstdio>

using namespace parrec;
using codegen::ArgValue;

namespace {

const char *ForwardSource =
    "prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))\n";

const char *BackwardSource =
    "prob backward(hmm h, state[h] s, seq[*] x, index[x] i, int len) =\n"
    "  if i >= len then\n"
    "    if s.isend then 1.0 else 0.0\n"
    "  else\n"
    "    sum(t in s.transitionsfrom :\n"
    "        t.prob *\n"
    "        (if t.end.isend then 1.0 else t.end.emission[x[i]]) *\n"
    "        backward(t.end, i + 1, len))\n";

} // namespace

int main() {
  DiagnosticEngine Diags;
  auto Forward = runtime::CompiledRecurrence::compile(ForwardSource,
                                                      Diags);
  auto Backward = runtime::CompiledRecurrence::compile(BackwardSource,
                                                       Diags);
  if (!Forward || !Backward) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  bio::Hmm Casino = bio::makeCasinoModel();
  int64_t Fair = Casino.findState("fair");
  int64_t Loaded = Casino.findState("loaded");

  // A hand-crafted session: fair play, then a stretch of suspiciously
  // many sixes ('f'), then fair play again.
  std::string Rolls = "abcdeafcdbeafbcd"
                      "ffffefffdfffffbf"
                      "cadbecafdbecbade";
  bio::Sequence X("rolls", Rolls);
  int64_t L = X.length();

  gpu::Device Device;
  runtime::RunOptions Keep;
  Keep.KeepTable = true;

  std::vector<ArgValue> FArgs = {ArgValue::ofHmm(&Casino), ArgValue(),
                                 ArgValue::ofSeq(&X), ArgValue()};
  std::vector<ArgValue> BArgs = {ArgValue::ofHmm(&Casino), ArgValue(),
                                 ArgValue::ofSeq(&X), ArgValue(),
                                 ArgValue::ofInt(L)};
  auto F = Forward->runGpu(FArgs, Device, Diags, Keep);
  auto B = Backward->runGpu(BArgs, Device, Diags, Keep);
  if (!F || !B) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  std::printf("forward schedule:  S = %s (left to right)\n",
              F->UsedSchedule.str({"s", "i"}).c_str());
  std::printf("backward schedule: S = %s (right to left)\n\n",
              B->UsedSchedule.str({"s", "i", "len"}).c_str());

  // P(state s after roll i | rolls) = F(s,i) * B(s,i) / P(rolls).
  double LogEvidence = F->RootValue; // F(end, L).
  std::printf("log P(rolls) = %.3f\n\n", LogEvidence);
  std::printf("roll  posterior P(loaded)   (#: 0.1 each)\n");
  double MaxInFair = 0.0, MinInLoadedRun = 1.0;
  for (int64_t I = 1; I <= L; ++I) {
    double LogF = F->cellValue({Loaded, I});
    double LogB = B->cellValue({Loaded, I, L});
    double LogFairF = F->cellValue({Fair, I});
    double LogFairB = B->cellValue({Fair, I, L});
    double PLoaded = std::exp(LogF + LogB - LogEvidence);
    double PFair = std::exp(LogFairF + LogFairB - LogEvidence);
    // Normalise over the two emitting states (begin/end carry nothing
    // mid-sequence).
    double Posterior = PLoaded / (PLoaded + PFair);
    int Bars = static_cast<int>(Posterior * 10 + 0.5);
    std::printf("%3lld %c  %5.2f  %.*s\n",
                static_cast<long long>(I), Rolls[I - 1], Posterior,
                Bars, "##########");
    bool InLoadedRun = I > 16 && I <= 32;
    if (InLoadedRun)
      MinInLoadedRun = std::min(MinInLoadedRun, Posterior);
    else if (I > 4 && I < 13)
      MaxInFair = std::max(MaxInFair, Posterior);
  }
  std::printf("\nthe loaded-die stretch (rolls 17-32) lights up: "
              "min posterior there %.2f vs max %.2f in fair play\n",
              MinInLoadedRun, MaxInFair);
  return MinInLoadedRun > MaxInFair ? 0 : 1;
}
