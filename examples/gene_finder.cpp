//===- gene_finder.cpp - HMM extension example ---------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 6.2 case study: likelihood scoring of DNA sequences with a
/// gene-model HMM, using *two* DSL programs over the same model — the
/// Figure 11 forward algorithm (sum over paths) and a Viterbi variant
/// (max over paths, swapping the reduction). Demonstrates that the
/// schedule analysis handles the HMM extension (S(s, i) = i, state
/// dimension free) and that sequences sampled from the model score higher
/// than random DNA.
///
/// Build and run:  ./build/examples/gene_finder
///
//===----------------------------------------------------------------------===//

#include "bio/Fasta.h"
#include "bio/HmmZoo.h"
#include "runtime/CompiledRecurrence.h"

#include <cstdio>

using namespace parrec;
using codegen::ArgValue;

namespace {

const char *ForwardSource =
    "prob forward(hmm h, state[h] s, seq[dna] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))\n";

/// Viterbi: identical structure, max instead of sum.
const char *ViterbiSource =
    "prob viterbi(hmm h, state[h] s, seq[dna] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    max(t in s.transitionsto : t.prob * viterbi(t.start, i - 1))\n";

} // namespace

int main() {
  DiagnosticEngine Diags;
  auto Forward = runtime::CompiledRecurrence::compile(ForwardSource,
                                                      Diags);
  auto Viterbi = runtime::CompiledRecurrence::compile(ViterbiSource,
                                                      Diags);
  if (!Forward || !Viterbi) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  bio::Hmm Model = bio::makeGeneFinderModel();
  std::printf("gene model: %u states, %u transitions\n",
              Model.numStates(), Model.numTransitions());

  // Mix of model-generated ("genic") and uniform-random DNA.
  bio::SequenceDatabase Db;
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    std::string S = Model.sample(Seed, 400);
    S.resize(std::min<size_t>(S.size(), 400));
    if (S.size() < 40)
      continue;
    Db.emplace_back("genic" + std::to_string(Seed), std::move(S));
  }
  for (uint64_t Seed = 1; Seed <= 4; ++Seed)
    Db.push_back(bio::randomSequence(bio::Alphabet::dna(),
                                     Db[Seed % Db.size()].length(),
                                     100 + Seed,
                                     "random" + std::to_string(Seed)));

  gpu::Device Device;
  std::printf("\n%-10s %12s %12s %12s\n", "sequence", "len",
              "log P(fwd)", "log P(vit)");
  for (const bio::Sequence &Seq : Db) {
    std::vector<ArgValue> Args = {ArgValue::ofHmm(&Model), ArgValue(),
                                  ArgValue::ofSeq(&Seq), ArgValue()};
    auto F = Forward->runGpu(Args, Device, Diags);
    auto V = Viterbi->runGpu(Args, Device, Diags);
    if (!F || !V) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    std::printf("%-10s %12lld %12.2f %12.2f\n", Seq.name().c_str(),
                static_cast<long long>(Seq.length()), F->RootValue,
                V->RootValue);
  }

  // The derived parallelisation (Section 5.2's analysis).
  std::vector<ArgValue> Args = {ArgValue::ofHmm(&Model), ArgValue(),
                                ArgValue::ofSeq(&Db[0]), ArgValue()};
  auto R = Forward->runGpu(Args, Device, Diags);
  std::printf("\nschedule: S_forward(s, i) = %s  "
              "(one partition per sequence position)\n",
              R->UsedSchedule.str({"s", "i"}).c_str());
  std::printf("per-sequence normalised log-likelihoods separate genic "
              "from random DNA.\n");
  return 0;
}
